// The dataflow-backed plan-integrity passes: memory-bound, dead-write,
// and use-liveness. All three are thin adapters from the DataflowSummary
// (analysis/dataflow.h) into the diagnostic framework; the analysis
// itself is a pure function of the compiled program (plus the runtime
// plan's CP/MR placement for the memory bound), so each pass simply
// re-derives its summary — the framework gives passes no shared state,
// and the walks are linear in program size.

#include <string>

#include "analysis/analysis.h"
#include "analysis/dataflow.h"
#include "lops/compiler_backend.h"
#include "matrix/matrix_characteristics.h"

namespace relm {
namespace analysis {

namespace {

std::string SiteLoc(int block_id, int64_t hop_id, int line, int column) {
  std::string loc = "block " + std::to_string(block_id);
  if (hop_id >= 0) loc += " hop " + std::to_string(hop_id);
  if (line > 0) {
    loc += " at line " + std::to_string(line) + ":" +
           std::to_string(column);
  }
  return loc;
}

std::string Bytes(int64_t b) { return std::to_string(b) + " bytes"; }

// ---- (6) static peak vs. CP budget ----

class MemoryBoundPass : public Pass {
 public:
  const char* id() const override { return "memory-bound"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    if (input.runtime == nullptr) return;  // needs a plan and its budget
    const int64_t budget = input.runtime->resources.CpBudget();
    DataflowSummary sum = AnalyzeDataflow(*input.program, input.runtime);

    // A CP-only operation that exceeds the budget has no MR fallback and
    // no eviction escape hatch: its working set is live all at once.
    CheckBlocks(input.runtime->main, budget, report);
    for (const auto& [name, blocks] : input.runtime->functions) {
      CheckBlocks(blocks, budget, report);
    }

    // Eviction can shed anything not live at the peak instruction, so
    // the spill prediction compares the liveness-disciplined bound (the
    // resident bound flags scripts the engine handles fine by evicting).
    if (sum.peak.bounded && sum.peak.live_bytes > budget) {
      report->Add(
          Severity::kWarning, id(),
          SiteLoc(sum.peak.peak_block_id, sum.peak.max_op_hop_id,
                  sum.peak.max_op_line, 0),
          "static live-set peak " + Bytes(sum.peak.live_bytes) +
              " exceeds the CP budget " + Bytes(budget) +
              ": the plan will spill (resident-model bound " +
              Bytes(sum.peak.resident_bytes) + ")");
    }
  }

 private:
  void CheckBlocks(const std::vector<RuntimeBlock>& blocks, int64_t budget,
                   AnalysisReport* report) {
    for (const RuntimeBlock& block : blocks) {
      int block_id = block.block != nullptr ? block.block->id() : -1;
      for (const RuntimeInstr& instr : block.instrs) {
        if (instr.kind != RuntimeInstr::Kind::kCp ||
            instr.hop == nullptr) {
          continue;
        }
        const Hop& h = *instr.hop;
        if (!HopIsOperator(h) || HopIsMrCapable(h)) continue;
        // Only genuine compute operators hold their whole working set at
        // once: writes pin an already-computed value (evictable), calls
        // and prints carry pass-through estimates. And an *unknown*
        // working set (sentinel-saturated) is not evidence of not
        // fitting — dynamic recompilation resolves it at run time.
        switch (h.kind()) {
          case HopKind::kTransientWrite:
          case HopKind::kPersistentWrite:
          case HopKind::kFunctionCall:
          case HopKind::kPrint:
            continue;
          default:
            break;
        }
        if (h.op_mem() >= kUnknownSizeSentinel) continue;
        if (h.op_mem() > budget) {
          report->Add(
              Severity::kError, id(),
              SiteLoc(block_id, h.id(), h.line(), h.column()),
              std::string(HopKindName(h.kind())) +
                  " is CP-only but its working set " + Bytes(h.op_mem()) +
                  " exceeds the CP budget " + Bytes(budget) +
                  ": no eviction or MR fallback can make it fit");
        }
      }
      CheckBlocks(block.body, budget, report);
      CheckBlocks(block.else_body, budget, report);
    }
  }
};

// ---- (7) dead writes ----

class DeadWritePass : public Pass {
 public:
  const char* id() const override { return "dead-write"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    DataflowSummary sum = AnalyzeDataflow(*input.program);
    for (const DeadWrite& dw : sum.dead_writes) {
      report->Add(Severity::kWarning, id(),
                  SiteLoc(dw.block_id, -1, dw.line, dw.column),
                  std::string(dw.materialized
                                  ? "computed and materialized value of '"
                                  : "assignment to '") +
                      dw.var +
                      "' is never read before being overwritten or "
                      "dropped");
    }
  }
};

// ---- (8) reads without a reaching definition ----

class UseLivenessPass : public Pass {
 public:
  const char* id() const override { return "use-liveness"; }

  void Run(const AnalysisInput& input, AnalysisReport* report) override {
    DataflowSummary sum = AnalyzeDataflow(*input.program);
    for (const UndefinedRead& ur : sum.undefined_reads) {
      if (ur.definite) {
        report->Add(Severity::kError, id(),
                    SiteLoc(ur.block_id, ur.hop_id, ur.line, ur.column),
                    "read of '" + ur.var +
                        "' which no prior path defines");
      } else {
        report->Add(Severity::kWarning, id(),
                    SiteLoc(ur.block_id, ur.hop_id, ur.line, ur.column),
                    "read of '" + ur.var +
                        "' which some path leaves undefined");
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> MakeMemoryBoundPass() {
  return std::make_unique<MemoryBoundPass>();
}

std::unique_ptr<Pass> MakeDeadWritePass() {
  return std::make_unique<DeadWritePass>();
}

std::unique_ptr<Pass> MakeUseLivenessPass() {
  return std::make_unique<UseLivenessPass>();
}

}  // namespace analysis
}  // namespace relm

#ifndef RELM_MATRIX_MATRIX_CHARACTERISTICS_H_
#define RELM_MATRIX_MATRIX_CHARACTERISTICS_H_

#include <cstdint>
#include <string>

namespace relm {

/// Marker for an unknown dimension or nnz count. Size inference over ML
/// programs is not always possible (data-dependent operators, UDFs), and
/// unknowns are first-class in the compiler and the resource optimizer.
inline constexpr int64_t kUnknown = -1;

/// Dimensions and sparsity metadata of a matrix (or scalar, 1x1). This is
/// the only information the compiler, cost model, and resource optimizer
/// ever need about data; actual cell values are irrelevant to plan choice.
class MatrixCharacteristics {
 public:
  MatrixCharacteristics() = default;
  MatrixCharacteristics(int64_t rows, int64_t cols, int64_t nnz = kUnknown)
      : rows_(rows), cols_(cols), nnz_(nnz) {}

  /// Fully-known characteristics from a sparsity fraction in [0,1].
  static MatrixCharacteristics Dense(int64_t rows, int64_t cols) {
    return MatrixCharacteristics(rows, cols, rows * cols);
  }
  static MatrixCharacteristics WithSparsity(int64_t rows, int64_t cols,
                                            double sparsity);
  /// Characteristics with everything unknown.
  static MatrixCharacteristics Unknown() {
    return MatrixCharacteristics(kUnknown, kUnknown, kUnknown);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return nnz_; }

  void set_rows(int64_t r) { rows_ = r; }
  void set_cols(int64_t c) { cols_ = c; }
  void set_nnz(int64_t n) { nnz_ = n; }

  bool dims_known() const { return rows_ >= 0 && cols_ >= 0; }
  bool nnz_known() const { return nnz_ >= 0; }
  bool fully_known() const { return dims_known() && nnz_known(); }

  int64_t cells() const {
    return dims_known() ? rows_ * cols_ : kUnknown;
  }

  /// Sparsity in [0,1]; returns 1.0 (worst case) if nnz or dims unknown.
  double SparsityOrWorstCase() const;

  /// True if the compiler would pick a sparse representation: sparsity
  /// below threshold and more than one column (vectors stay dense).
  bool PrefersSparse() const;

  bool operator==(const MatrixCharacteristics& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && nnz_ == o.nnz_;
  }

  std::string ToString() const;

 private:
  int64_t rows_ = kUnknown;
  int64_t cols_ = kUnknown;
  int64_t nnz_ = kUnknown;
};

/// Sparsity threshold below which a matrix (with >1 column) is stored
/// sparse, mirroring SystemML's MatrixBlock.SPARSITY_TURN_POINT.
inline constexpr double kSparsityTurnPoint = 0.4;

/// Compiler-side worst-case estimate of the in-memory size of a matrix
/// with the given characteristics; unknown dims/nnz fall back to dense
/// worst case, unknown dims yield a very large sentinel so operators with
/// unknown inputs never fit a memory budget.
int64_t EstimateSizeInMemory(const MatrixCharacteristics& mc);

/// In-memory size for explicit dims/sparsity (no unknown handling).
int64_t EstimateSizeInMemory(int64_t rows, int64_t cols, double sparsity);

/// Serialized size in the binary-block format on (simulated) HDFS.
int64_t EstimateSizeOnDisk(const MatrixCharacteristics& mc);
int64_t EstimateSizeOnDisk(int64_t rows, int64_t cols, int64_t nnz);

/// Sentinel returned when the size cannot be bounded (unknown dims);
/// larger than any real cluster memory so "does it fit" checks fail.
inline constexpr int64_t kUnknownSizeSentinel =
    int64_t{1} << 62;  // ~4.6 exabytes

}  // namespace relm

#endif  // RELM_MATRIX_MATRIX_CHARACTERISTICS_H_

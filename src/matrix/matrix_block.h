#ifndef RELM_MATRIX_MATRIX_BLOCK_H_
#define RELM_MATRIX_MATRIX_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "matrix/matrix_characteristics.h"

namespace relm {

/// An in-memory matrix with either a dense (row-major) or CSR sparse
/// representation. This is the real runtime data structure used by the
/// in-memory (CP) operators; at benchmark scale only metadata is used,
/// but tests and examples execute real numerics on these blocks.
class MatrixBlock {
 public:
  /// Creates an empty (0x0) dense block.
  MatrixBlock() = default;

  /// Creates an all-zero block with the given shape; representation is
  /// dense unless `sparse` is requested.
  MatrixBlock(int64_t rows, int64_t cols, bool sparse = false);

  /// ---- Factories ----

  /// Matrix filled with a constant value (sparse-aware: 0.0 yields nnz 0).
  static MatrixBlock Constant(int64_t rows, int64_t cols, double value);
  /// Uniform random entries in [min,max] with the given sparsity, using a
  /// deterministic generator.
  static MatrixBlock Rand(int64_t rows, int64_t cols, double sparsity,
                          double min, double max, Random* rng);
  /// Column vector [from, from+incr, ...] up to `to` (inclusive).
  static MatrixBlock Seq(double from, double to, double incr);
  /// Identity matrix.
  static MatrixBlock Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  bool is_sparse() const { return sparse_; }
  bool is_vector() const { return rows_ == 1 || cols_ == 1; }
  bool is_scalar_shape() const { return rows_ == 1 && cols_ == 1; }

  /// Number of non-zero values (recomputed for dense on demand).
  int64_t ComputeNnz() const;

  /// Characteristics view of this block (dims + exact nnz).
  MatrixCharacteristics Characteristics() const;

  /// Element access (both representations; CSR get is O(log nnz_row)).
  double Get(int64_t r, int64_t c) const;
  /// Element update; only valid on dense blocks.
  void Set(int64_t r, int64_t c, double v);

  /// Converts the representation in place.
  void ToDense();
  void ToSparse();
  /// Switches to the representation the sparsity suggests.
  void Compact();

  /// Dense payload (valid only when !is_sparse()).
  std::vector<double>& dense() { return dense_; }
  const std::vector<double>& dense() const { return dense_; }

  /// CSR payload (valid only when is_sparse()).
  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Builds a CSR block directly from its arrays (rows+1 pointers).
  static MatrixBlock FromCsr(int64_t rows, int64_t cols,
                             std::vector<int64_t> row_ptr,
                             std::vector<int32_t> col_idx,
                             std::vector<double> values);

  /// Actual in-memory footprint of this block in bytes.
  int64_t MemorySize() const;

  /// True when all entries differ by at most `tol` (shape must match).
  bool ApproxEquals(const MatrixBlock& other, double tol = 1e-9) const;

  std::string ToString(int64_t max_rows = 8, int64_t max_cols = 8) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  bool sparse_ = false;
  std::vector<double> dense_;       // row-major, rows*cols
  std::vector<int64_t> row_ptr_;    // CSR, size rows+1
  std::vector<int32_t> col_idx_;    // CSR
  std::vector<double> values_;      // CSR
};

}  // namespace relm

#endif  // RELM_MATRIX_MATRIX_BLOCK_H_

#include "matrix/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "exec/op_registry.h"
#include "exec/worker_pool.h"

namespace relm {

double ApplyBinOp(BinOp op, double a, double b) {
  switch (op) {
    case BinOp::kAdd:
      return a + b;
    case BinOp::kSub:
      return a - b;
    case BinOp::kMul:
      return a * b;
    case BinOp::kDiv:
      return a / b;
    case BinOp::kPow:
      return std::pow(a, b);
    case BinOp::kMin:
      return std::min(a, b);
    case BinOp::kMax:
      return std::max(a, b);
    case BinOp::kLess:
      return a < b ? 1.0 : 0.0;
    case BinOp::kLessEq:
      return a <= b ? 1.0 : 0.0;
    case BinOp::kGreater:
      return a > b ? 1.0 : 0.0;
    case BinOp::kGreaterEq:
      return a >= b ? 1.0 : 0.0;
    case BinOp::kEq:
      return a == b ? 1.0 : 0.0;
    case BinOp::kNotEq:
      return a != b ? 1.0 : 0.0;
    case BinOp::kAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case BinOp::kOr:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

double ApplyUnOp(UnOp op, double a) {
  switch (op) {
    case UnOp::kNeg:
      return -a;
    case UnOp::kAbs:
      return std::fabs(a);
    case UnOp::kSqrt:
      return std::sqrt(a);
    case UnOp::kExp:
      return std::exp(a);
    case UnOp::kLog:
      return std::log(a);
    case UnOp::kRound:
      return std::round(a);
    case UnOp::kFloor:
      return std::floor(a);
    case UnOp::kCeil:
      return std::ceil(a);
    case UnOp::kSign:
      return a > 0 ? 1.0 : (a < 0 ? -1.0 : 0.0);
    case UnOp::kNot:
      return a == 0.0 ? 1.0 : 0.0;
  }
  return 0.0;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kPow:
      return "^";
    case BinOp::kMin:
      return "min";
    case BinOp::kMax:
      return "max";
    case BinOp::kLess:
      return "<";
    case BinOp::kLessEq:
      return "<=";
    case BinOp::kGreater:
      return ">";
    case BinOp::kGreaterEq:
      return ">=";
    case BinOp::kEq:
      return "==";
    case BinOp::kNotEq:
      return "!=";
    case BinOp::kAnd:
      return "&";
    case BinOp::kOr:
      return "|";
  }
  return "?";
}

const char* UnOpName(UnOp op) {
  switch (op) {
    case UnOp::kNeg:
      return "neg";
    case UnOp::kAbs:
      return "abs";
    case UnOp::kSqrt:
      return "sqrt";
    case UnOp::kExp:
      return "exp";
    case UnOp::kLog:
      return "log";
    case UnOp::kRound:
      return "round";
    case UnOp::kFloor:
      return "floor";
    case UnOp::kCeil:
      return "ceil";
    case UnOp::kSign:
      return "sign";
    case UnOp::kNot:
      return "!";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kMean:
      return "mean";
    case AggOp::kTrace:
      return "trace";
  }
  return "?";
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kLess:
    case BinOp::kLessEq:
    case BinOp::kGreater:
    case BinOp::kGreaterEq:
    case BinOp::kEq:
    case BinOp::kNotEq:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

bool IsSparseSafe(BinOp op) {
  return op == BinOp::kMul || op == BinOp::kAnd;
}

namespace {

Status ShapeError(const char* what, const MatrixBlock& a,
                  const MatrixBlock& b) {
  std::ostringstream os;
  os << what << ": incompatible shapes " << a.rows() << "x" << a.cols()
     << " and " << b.rows() << "x" << b.cols();
  return Status::RuntimeError(os.str());
}

// Rows (or columns) per parallel task so each task covers at least the
// registry's cells-per-task floor for the operator class. Tiling is
// along one dimension with disjoint output slices and an unchanged
// inner loop, so results are bitwise identical to the serial kernels
// for any worker count.
int64_t TileGrain(exec::OpClass cls, int64_t cells_per_line) {
  const int64_t floor_cells = exec::Profile(cls).min_cells_per_task;
  return std::max<int64_t>(1,
                           floor_cells / std::max<int64_t>(1, cells_per_line));
}

}  // namespace

Result<MatrixBlock> MatMult(const MatrixBlock& a, const MatrixBlock& b) {
  if (a.cols() != b.rows()) return ShapeError("%*%", a, b);
  const int64_t m = a.rows();
  const int64_t n = b.cols();
  const int64_t k = a.cols();
  MatrixBlock c(m, n, false);
  auto& cd = c.dense();
  // All four sparsity combinations tile over rows of A: each task owns
  // a disjoint slice of C's rows, so the parallel result is bitwise
  // identical to the serial one.
  const int64_t grain = TileGrain(exec::OpClass::kMatMult, k * n);
  if (!a.is_sparse() && !b.is_sparse()) {
    const auto& ad = a.dense();
    const auto& bd = b.dense();
    // ikj loop order for cache-friendly access to B and C.
    exec::ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
          double aik = ad[i * k + kk];
          if (aik == 0.0) continue;
          const double* brow = &bd[kk * n];
          double* crow = &cd[i * n];
          for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    });
  } else if (a.is_sparse() && !b.is_sparse()) {
    const auto& bd = b.dense();
    exec::ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        for (int64_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
          double aik = a.values()[p];
          int64_t kk = a.col_idx()[p];
          const double* brow = &bd[kk * n];
          double* crow = &cd[i * n];
          for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    });
  } else if (!a.is_sparse() && b.is_sparse()) {
    const auto& ad = a.dense();
    exec::ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
          double aik = ad[i * k + kk];
          if (aik == 0.0) continue;
          for (int64_t p = b.row_ptr()[kk]; p < b.row_ptr()[kk + 1]; ++p) {
            cd[i * n + b.col_idx()[p]] += aik * b.values()[p];
          }
        }
      }
    });
  } else {
    exec::ParallelFor(0, m, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        for (int64_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
          double aik = a.values()[p];
          int64_t kk = a.col_idx()[p];
          for (int64_t q = b.row_ptr()[kk]; q < b.row_ptr()[kk + 1]; ++q) {
            cd[i * n + b.col_idx()[q]] += aik * b.values()[q];
          }
        }
      }
    });
  }
  return c;
}

Result<MatrixBlock> TransposeSelfMatMult(const MatrixBlock& a, bool left) {
  // t(A)%*%A or A%*%t(A); computed via explicit transpose for simplicity
  // with a symmetric fill to halve the multiply work on the dense path.
  MatrixBlock at = Transpose(a);
  if (left) return MatMult(at, a);
  return MatMult(a, at);
}

MatrixBlock Transpose(const MatrixBlock& a) {
  MatrixBlock t(a.cols(), a.rows(), false);
  auto& td = t.dense();
  // Tiled over source rows: row r of A fills column r of T, disjoint
  // across tasks.
  const int64_t grain = TileGrain(exec::OpClass::kReorg, a.cols());
  if (!a.is_sparse()) {
    const auto& ad = a.dense();
    exec::ParallelFor(0, a.rows(), grain, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        for (int64_t c = 0; c < a.cols(); ++c) {
          td[c * a.rows() + r] = ad[r * a.cols() + c];
        }
      }
    });
  } else {
    exec::ParallelFor(0, a.rows(), grain, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        for (int64_t p = a.row_ptr()[r]; p < a.row_ptr()[r + 1]; ++p) {
          td[static_cast<int64_t>(a.col_idx()[p]) * a.rows() + r] =
              a.values()[p];
        }
      }
    });
    t.Compact();
  }
  return t;
}

Result<MatrixBlock> ElementwiseBinary(BinOp op, const MatrixBlock& a,
                                      const MatrixBlock& b) {
  // Broadcast rules: exact shape match; or b is 1x1; or b is a column
  // vector with matching rows; or b is a row vector with matching cols.
  enum class Mode { kCell, kScalar, kColVec, kRowVec } mode;
  if (a.rows() == b.rows() && a.cols() == b.cols()) {
    mode = Mode::kCell;
  } else if (b.is_scalar_shape()) {
    mode = Mode::kScalar;
  } else if (b.cols() == 1 && b.rows() == a.rows()) {
    mode = Mode::kColVec;
  } else if (b.rows() == 1 && b.cols() == a.cols()) {
    mode = Mode::kRowVec;
  } else {
    return ShapeError("elementwise", a, b);
  }
  MatrixBlock out(a.rows(), a.cols(), false);
  auto& od = out.dense();
  exec::ParallelFor(
      0, a.rows(), TileGrain(exec::OpClass::kElementwise, a.cols()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          for (int64_t c = 0; c < a.cols(); ++c) {
            double bv;
            switch (mode) {
              case Mode::kCell:
                bv = b.Get(r, c);
                break;
              case Mode::kScalar:
                bv = b.Get(0, 0);
                break;
              case Mode::kColVec:
                bv = b.Get(r, 0);
                break;
              case Mode::kRowVec:
                bv = b.Get(0, c);
                break;
            }
            od[r * a.cols() + c] = ApplyBinOp(op, a.Get(r, c), bv);
          }
        }
      });
  if (IsSparseSafe(op)) out.Compact();
  return out;
}

MatrixBlock ScalarBinary(BinOp op, const MatrixBlock& a, double scalar,
                         bool scalar_left) {
  MatrixBlock out(a.rows(), a.cols(), false);
  auto& od = out.dense();
  exec::ParallelFor(
      0, a.rows(), TileGrain(exec::OpClass::kElementwise, a.cols()),
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          for (int64_t c = 0; c < a.cols(); ++c) {
            double av = a.Get(r, c);
            od[r * a.cols() + c] = scalar_left
                                       ? ApplyBinOp(op, scalar, av)
                                       : ApplyBinOp(op, av, scalar);
          }
        }
      });
  return out;
}

MatrixBlock ElementwiseUnary(UnOp op, const MatrixBlock& a) {
  MatrixBlock out(a.rows(), a.cols(), false);
  auto& od = out.dense();
  exec::ParallelFor(0, a.rows(),
                    TileGrain(exec::OpClass::kUnary, a.cols()),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t r = lo; r < hi; ++r) {
                        for (int64_t c = 0; c < a.cols(); ++c) {
                          od[r * a.cols() + c] = ApplyUnOp(op, a.Get(r, c));
                        }
                      }
                    });
  return out;
}

Result<double> Aggregate(AggOp op, const MatrixBlock& a) {
  if (op == AggOp::kTrace && a.rows() != a.cols()) {
    return Status::RuntimeError("trace requires a square matrix");
  }
  double acc = 0.0;
  switch (op) {
    case AggOp::kSum:
    case AggOp::kMean:
      acc = 0.0;
      break;
    case AggOp::kMin:
      acc = std::numeric_limits<double>::infinity();
      break;
    case AggOp::kMax:
      acc = -std::numeric_limits<double>::infinity();
      break;
    case AggOp::kTrace: {
      acc = 0.0;
      for (int64_t i = 0; i < a.rows(); ++i) acc += a.Get(i, i);
      return acc;
    }
  }
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      double v = a.Get(r, c);
      switch (op) {
        case AggOp::kSum:
        case AggOp::kMean:
          acc += v;
          break;
        case AggOp::kMin:
          acc = std::min(acc, v);
          break;
        case AggOp::kMax:
          acc = std::max(acc, v);
          break;
        default:
          break;
      }
    }
  }
  if (op == AggOp::kMean) {
    acc /= static_cast<double>(a.rows() * a.cols());
  }
  return acc;
}

Result<MatrixBlock> AggregateAxis(AggOp op, AggDir dir,
                                  const MatrixBlock& a) {
  if (dir == AggDir::kAll) {
    RELM_ASSIGN_OR_RETURN(double v, Aggregate(op, a));
    MatrixBlock out(1, 1, false);
    out.Set(0, 0, v);
    return out;
  }
  if (op == AggOp::kTrace) {
    return Status::RuntimeError("trace has no row/col variant");
  }
  bool row = dir == AggDir::kRow;
  int64_t out_rows = row ? a.rows() : 1;
  int64_t out_cols = row ? 1 : a.cols();
  double init = 0.0;
  if (op == AggOp::kMin) init = std::numeric_limits<double>::infinity();
  if (op == AggOp::kMax) init = -std::numeric_limits<double>::infinity();
  MatrixBlock out(out_rows, out_cols, false);
  auto& od = out.dense();
  std::fill(od.begin(), od.end(), init);
  auto accumulate = [op](double& slot, double v) {
    switch (op) {
      case AggOp::kSum:
      case AggOp::kMean:
        slot += v;
        break;
      case AggOp::kMin:
        slot = std::min(slot, v);
        break;
      case AggOp::kMax:
        slot = std::max(slot, v);
        break;
      default:
        break;
    }
  };
  // Tile along the preserved dimension: each task owns a disjoint set
  // of output slots and walks the reduced dimension in the same order
  // as the serial kernel, so floating-point accumulation per slot is
  // bitwise identical for any worker count. (Full reductions to one
  // scalar stay serial — see Aggregate.)
  const int64_t grain = TileGrain(exec::OpClass::kRowColAggregate,
                                  row ? a.cols() : a.rows());
  if (row) {
    exec::ParallelFor(0, a.rows(), grain, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        for (int64_t c = 0; c < a.cols(); ++c) accumulate(od[r], a.Get(r, c));
      }
    });
  } else {
    exec::ParallelFor(0, a.cols(), grain, [&](int64_t lo, int64_t hi) {
      for (int64_t c = lo; c < hi; ++c) {
        for (int64_t r = 0; r < a.rows(); ++r) accumulate(od[c], a.Get(r, c));
      }
    });
  }
  if (op == AggOp::kMean) {
    double denom = row ? static_cast<double>(a.cols())
                       : static_cast<double>(a.rows());
    for (auto& v : od) v /= denom;
  }
  return out;
}

MatrixBlock PpredScalar(BinOp cmp, const MatrixBlock& a, double scalar) {
  return ScalarBinary(cmp, a, scalar, /*scalar_left=*/false);
}

Result<MatrixBlock> Table(const MatrixBlock& v1, const MatrixBlock& v2) {
  if (v1.cols() != 1 || v2.cols() != 1 || v1.rows() != v2.rows()) {
    return ShapeError("table", v1, v2);
  }
  int64_t max1 = 0;
  int64_t max2 = 0;
  for (int64_t i = 0; i < v1.rows(); ++i) {
    int64_t a = static_cast<int64_t>(std::llround(v1.Get(i, 0)));
    int64_t b = static_cast<int64_t>(std::llround(v2.Get(i, 0)));
    if (a < 1 || b < 1) {
      return Status::RuntimeError(
          "table requires positive integer category values");
    }
    max1 = std::max(max1, a);
    max2 = std::max(max2, b);
  }
  MatrixBlock out(max1, max2, false);
  for (int64_t i = 0; i < v1.rows(); ++i) {
    int64_t a = static_cast<int64_t>(std::llround(v1.Get(i, 0)));
    int64_t b = static_cast<int64_t>(std::llround(v2.Get(i, 0)));
    out.Set(a - 1, b - 1, out.Get(a - 1, b - 1) + 1.0);
  }
  out.Compact();
  return out;
}

Result<MatrixBlock> Solve(const MatrixBlock& a, const MatrixBlock& b) {
  if (a.rows() != a.cols()) {
    return Status::RuntimeError("solve: coefficient matrix must be square");
  }
  if (b.rows() != a.rows()) return ShapeError("solve", a, b);
  const int64_t n = a.rows();
  const int64_t m = b.cols();
  // Work on dense copies (augmented elimination with partial pivoting).
  MatrixBlock acopy = a;
  acopy.ToDense();
  MatrixBlock x = b;
  x.ToDense();
  auto& ad = acopy.dense();
  auto& xd = x.dense();
  for (int64_t col = 0; col < n; ++col) {
    // Pivot selection.
    int64_t pivot = col;
    double best = std::fabs(ad[col * n + col]);
    for (int64_t r = col + 1; r < n; ++r) {
      double v = std::fabs(ad[r * n + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      return Status::RuntimeError("solve: matrix is singular");
    }
    if (pivot != col) {
      for (int64_t c = 0; c < n; ++c) {
        std::swap(ad[col * n + c], ad[pivot * n + c]);
      }
      for (int64_t c = 0; c < m; ++c) {
        std::swap(xd[col * m + c], xd[pivot * m + c]);
      }
    }
    double diag = ad[col * n + col];
    for (int64_t r = col + 1; r < n; ++r) {
      double f = ad[r * n + col] / diag;
      if (f == 0.0) continue;
      for (int64_t c = col; c < n; ++c) ad[r * n + c] -= f * ad[col * n + c];
      for (int64_t c = 0; c < m; ++c) xd[r * m + c] -= f * xd[col * m + c];
    }
  }
  // Back substitution.
  for (int64_t col = n - 1; col >= 0; --col) {
    double diag = ad[col * n + col];
    for (int64_t c = 0; c < m; ++c) xd[col * m + c] /= diag;
    for (int64_t r = 0; r < col; ++r) {
      double f = ad[r * n + col];
      if (f == 0.0) continue;
      for (int64_t c = 0; c < m; ++c) xd[r * m + c] -= f * xd[col * m + c];
    }
  }
  return x;
}

Result<MatrixBlock> Append(const MatrixBlock& a, const MatrixBlock& b) {
  if (a.rows() != b.rows()) return ShapeError("cbind", a, b);
  MatrixBlock out(a.rows(), a.cols() + b.cols(), false);
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) out.Set(r, c, a.Get(r, c));
    for (int64_t c = 0; c < b.cols(); ++c) {
      out.Set(r, a.cols() + c, b.Get(r, c));
    }
  }
  out.Compact();
  return out;
}

Result<MatrixBlock> RightIndex(const MatrixBlock& a, int64_t rl, int64_t ru,
                               int64_t cl, int64_t cu) {
  if (rl < 1 || cl < 1 || ru > a.rows() || cu > a.cols() || rl > ru ||
      cl > cu) {
    std::ostringstream os;
    os << "indexing [" << rl << ":" << ru << ", " << cl << ":" << cu
       << "] out of bounds for " << a.rows() << "x" << a.cols();
    return Status::RuntimeError(os.str());
  }
  MatrixBlock out(ru - rl + 1, cu - cl + 1, false);
  for (int64_t r = rl; r <= ru; ++r) {
    for (int64_t c = cl; c <= cu; ++c) {
      out.Set(r - rl, c - cl, a.Get(r - 1, c - 1));
    }
  }
  out.Compact();
  return out;
}

Result<MatrixBlock> LeftIndex(const MatrixBlock& a, const MatrixBlock& v,
                              int64_t rl, int64_t ru, int64_t cl,
                              int64_t cu) {
  if (rl < 1 || cl < 1 || ru > a.rows() || cu > a.cols() || rl > ru ||
      cl > cu) {
    std::ostringstream os;
    os << "left indexing [" << rl << ":" << ru << ", " << cl << ":" << cu
       << "] out of bounds for " << a.rows() << "x" << a.cols();
    return Status::RuntimeError(os.str());
  }
  if (v.rows() != ru - rl + 1 || v.cols() != cu - cl + 1) {
    std::ostringstream os;
    os << "left indexing: value shape " << v.rows() << "x" << v.cols()
       << " does not match range " << (ru - rl + 1) << "x"
       << (cu - cl + 1);
    return Status::RuntimeError(os.str());
  }
  MatrixBlock out = a;
  out.ToDense();
  for (int64_t r = rl; r <= ru; ++r) {
    for (int64_t c = cl; c <= cu; ++c) {
      out.Set(r - 1, c - 1, v.Get(r - rl, c - cl));
    }
  }
  out.Compact();
  return out;
}

Result<MatrixBlock> Diag(const MatrixBlock& a) {
  if (a.cols() == 1) {
    MatrixBlock out(a.rows(), a.rows(), false);
    for (int64_t i = 0; i < a.rows(); ++i) out.Set(i, i, a.Get(i, 0));
    out.Compact();
    return out;
  }
  if (a.rows() != a.cols()) {
    return Status::RuntimeError("diag requires a vector or square matrix");
  }
  MatrixBlock out(a.rows(), 1, false);
  for (int64_t i = 0; i < a.rows(); ++i) out.Set(i, 0, a.Get(i, i));
  return out;
}

Result<double> CastToScalar(const MatrixBlock& a) {
  if (!a.is_scalar_shape()) {
    return Status::RuntimeError("as.scalar requires a 1x1 matrix");
  }
  return a.Get(0, 0);
}

}  // namespace relm

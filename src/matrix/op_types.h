#ifndef RELM_MATRIX_OP_TYPES_H_
#define RELM_MATRIX_OP_TYPES_H_

namespace relm {

/// Cell-wise binary operators (arithmetic, comparison, logical). Shared
/// between the compiler's HOPs and the runtime kernels so operator
/// semantics are defined exactly once.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  kMin,
  kMax,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEq,
  kNotEq,
  kAnd,
  kOr,
};

/// Cell-wise unary operators.
enum class UnOp {
  kNeg,
  kAbs,
  kSqrt,
  kExp,
  kLog,
  kRound,
  kFloor,
  kCeil,
  kSign,
  kNot,
};

/// Aggregation operators.
enum class AggOp { kSum, kMin, kMax, kMean, kTrace };

/// Aggregation direction: full, per-row (rowSums), per-column (colSums).
enum class AggDir { kAll, kRow, kCol };

/// Applies a binary operator to two scalars.
double ApplyBinOp(BinOp op, double a, double b);

/// Applies a unary operator to a scalar.
double ApplyUnOp(UnOp op, double a);

/// Short operator names for plan printing ("+", "-", "min", ">=", ...).
const char* BinOpName(BinOp op);
const char* UnOpName(UnOp op);
const char* AggOpName(AggOp op);

/// True for comparison/logical operators (result is 0/1).
bool IsComparison(BinOp op);

/// True if op(x, 0)==0 for all x, i.e. sparse-safe w.r.t. the second input
/// being a zero cell (multiplication and logical-and).
bool IsSparseSafe(BinOp op);

}  // namespace relm

#endif  // RELM_MATRIX_OP_TYPES_H_

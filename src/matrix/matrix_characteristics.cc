#include "matrix/matrix_characteristics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace relm {

MatrixCharacteristics MatrixCharacteristics::WithSparsity(int64_t rows,
                                                          int64_t cols,
                                                          double sparsity) {
  int64_t nnz = static_cast<int64_t>(
      std::llround(sparsity * static_cast<double>(rows) *
                   static_cast<double>(cols)));
  nnz = std::min(nnz, rows * cols);
  return MatrixCharacteristics(rows, cols, nnz);
}

double MatrixCharacteristics::SparsityOrWorstCase() const {
  if (!fully_known() || rows_ == 0 || cols_ == 0) return 1.0;
  return static_cast<double>(nnz_) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool MatrixCharacteristics::PrefersSparse() const {
  if (!fully_known()) return false;  // worst case: dense
  return cols_ > 1 && SparsityOrWorstCase() < kSparsityTurnPoint;
}

std::string MatrixCharacteristics::ToString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << ", nnz=" << nnz_ << "]";
  return os.str();
}

namespace {
constexpr int64_t kHeaderOverhead = 64;
constexpr int64_t kDoubleSize = 8;
constexpr int64_t kIndexSize = 4;
}  // namespace

int64_t EstimateSizeInMemory(int64_t rows, int64_t cols, double sparsity) {
  if (rows < 0 || cols < 0) return kUnknownSizeSentinel;
  double cells = static_cast<double>(rows) * static_cast<double>(cols);
  bool sparse = cols > 1 && sparsity < kSparsityTurnPoint;
  double bytes;
  if (sparse) {
    // CSR: values + column indices per nnz, one row pointer per row.
    double nnz = sparsity * cells;
    bytes = nnz * (kDoubleSize + kIndexSize) +
            static_cast<double>(rows + 1) * kIndexSize;
  } else {
    bytes = cells * kDoubleSize;
  }
  double total = bytes + kHeaderOverhead;
  if (total >= static_cast<double>(kUnknownSizeSentinel)) {
    return kUnknownSizeSentinel;
  }
  return static_cast<int64_t>(total);
}

int64_t EstimateSizeInMemory(const MatrixCharacteristics& mc) {
  if (!mc.dims_known()) return kUnknownSizeSentinel;
  return EstimateSizeInMemory(mc.rows(), mc.cols(), mc.SparsityOrWorstCase());
}

int64_t EstimateSizeOnDisk(int64_t rows, int64_t cols, int64_t nnz) {
  if (rows < 0 || cols < 0) return kUnknownSizeSentinel;
  if (nnz < 0) nnz = rows * cols;
  double sparsity = (rows == 0 || cols == 0)
                        ? 1.0
                        : static_cast<double>(nnz) /
                              (static_cast<double>(rows) *
                               static_cast<double>(cols));
  bool sparse = cols > 1 && sparsity < kSparsityTurnPoint;
  double bytes;
  if (sparse) {
    // Binary-cell blocks: (row, col, value) triples.
    bytes = static_cast<double>(nnz) * (2 * kIndexSize + kDoubleSize);
  } else {
    bytes = static_cast<double>(rows) * static_cast<double>(cols) *
            kDoubleSize;
  }
  if (bytes >= static_cast<double>(kUnknownSizeSentinel)) {
    return kUnknownSizeSentinel;
  }
  return static_cast<int64_t>(bytes);
}

int64_t EstimateSizeOnDisk(const MatrixCharacteristics& mc) {
  if (!mc.dims_known()) return kUnknownSizeSentinel;
  return EstimateSizeOnDisk(mc.rows(), mc.cols(), mc.nnz());
}

}  // namespace relm

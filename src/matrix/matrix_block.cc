#include "matrix/matrix_block.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace relm {

MatrixBlock::MatrixBlock(int64_t rows, int64_t cols, bool sparse)
    : rows_(rows), cols_(cols), sparse_(sparse) {
  if (sparse_) {
    row_ptr_.assign(rows_ + 1, 0);
  } else {
    dense_.assign(rows_ * cols_, 0.0);
  }
}

MatrixBlock MatrixBlock::Constant(int64_t rows, int64_t cols, double value) {
  if (value == 0.0) return MatrixBlock(rows, cols, /*sparse=*/cols > 1);
  MatrixBlock m(rows, cols, false);
  std::fill(m.dense_.begin(), m.dense_.end(), value);
  return m;
}

MatrixBlock MatrixBlock::Rand(int64_t rows, int64_t cols, double sparsity,
                              double min, double max, Random* rng) {
  bool sparse = cols > 1 && sparsity < kSparsityTurnPoint;
  if (!sparse) {
    MatrixBlock m(rows, cols, false);
    for (auto& v : m.dense_) {
      if (sparsity >= 1.0 || rng->NextDouble() < sparsity) {
        v = rng->Uniform(min, max);
      }
    }
    return m;
  }
  std::vector<int64_t> row_ptr(rows + 1, 0);
  std::vector<int32_t> col_idx;
  std::vector<double> values;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->NextDouble() < sparsity) {
        col_idx.push_back(static_cast<int32_t>(c));
        values.push_back(rng->Uniform(min, max));
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(values.size());
  }
  return FromCsr(rows, cols, std::move(row_ptr), std::move(col_idx),
                 std::move(values));
}

MatrixBlock MatrixBlock::Seq(double from, double to, double incr) {
  RELM_CHECK(incr != 0.0) << "seq increment must be non-zero";
  int64_t n = static_cast<int64_t>(std::floor((to - from) / incr)) + 1;
  n = std::max<int64_t>(n, 0);
  MatrixBlock m(n, 1, false);
  double v = from;
  for (int64_t i = 0; i < n; ++i, v += incr) m.dense_[i] = v;
  return m;
}

MatrixBlock MatrixBlock::Identity(int64_t n) {
  MatrixBlock m(n, n, false);
  for (int64_t i = 0; i < n; ++i) m.dense_[i * n + i] = 1.0;
  return m;
}

MatrixBlock MatrixBlock::FromCsr(int64_t rows, int64_t cols,
                                 std::vector<int64_t> row_ptr,
                                 std::vector<int32_t> col_idx,
                                 std::vector<double> values) {
  RELM_CHECK(static_cast<int64_t>(row_ptr.size()) == rows + 1);
  MatrixBlock m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.sparse_ = true;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

int64_t MatrixBlock::ComputeNnz() const {
  if (sparse_) {
    int64_t nnz = 0;
    for (double v : values_) {
      if (v != 0.0) ++nnz;
    }
    return nnz;
  }
  int64_t nnz = 0;
  for (double v : dense_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

MatrixCharacteristics MatrixBlock::Characteristics() const {
  return MatrixCharacteristics(rows_, cols_, ComputeNnz());
}

double MatrixBlock::Get(int64_t r, int64_t c) const {
  if (!sparse_) return dense_[r * cols_ + c];
  int64_t lo = row_ptr_[r];
  int64_t hi = row_ptr_[r + 1];
  auto begin = col_idx_.begin() + lo;
  auto end = col_idx_.begin() + hi;
  auto it = std::lower_bound(begin, end, static_cast<int32_t>(c));
  if (it != end && *it == c) return values_[it - col_idx_.begin()];
  return 0.0;
}

void MatrixBlock::Set(int64_t r, int64_t c, double v) {
  RELM_CHECK(!sparse_) << "Set() requires a dense block";
  dense_[r * cols_ + c] = v;
}

void MatrixBlock::ToDense() {
  if (!sparse_) return;
  std::vector<double> d(rows_ * cols_, 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d[r * cols_ + col_idx_[k]] = values_[k];
    }
  }
  dense_ = std::move(d);
  row_ptr_.clear();
  col_idx_.clear();
  values_.clear();
  sparse_ = false;
}

void MatrixBlock::ToSparse() {
  if (sparse_) return;
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  std::vector<int32_t> col_idx;
  std::vector<double> values;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      double v = dense_[r * cols_ + c];
      if (v != 0.0) {
        col_idx.push_back(static_cast<int32_t>(c));
        values.push_back(v);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(values.size());
  }
  row_ptr_ = std::move(row_ptr);
  col_idx_ = std::move(col_idx);
  values_ = std::move(values);
  dense_.clear();
  sparse_ = true;
}

void MatrixBlock::Compact() {
  int64_t cells = rows_ * cols_;
  if (cells == 0) return;
  double sparsity = static_cast<double>(ComputeNnz()) /
                    static_cast<double>(cells);
  if (cols_ > 1 && sparsity < kSparsityTurnPoint) {
    ToSparse();
  } else {
    ToDense();
  }
}

int64_t MatrixBlock::MemorySize() const {
  if (sparse_) {
    return static_cast<int64_t>(values_.size()) * 8 +
           static_cast<int64_t>(col_idx_.size()) * 4 +
           static_cast<int64_t>(row_ptr_.size()) * 8 + 64;
  }
  return static_cast<int64_t>(dense_.size()) * 8 + 64;
}

bool MatrixBlock::ApproxEquals(const MatrixBlock& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      if (std::fabs(Get(r, c) - other.Get(r, c)) > tol) return false;
    }
  }
  return true;
}

std::string MatrixBlock::ToString(int64_t max_rows, int64_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << (sparse_ ? " sparse" : " dense") << "\n";
  int64_t pr = std::min(rows_, max_rows);
  int64_t pc = std::min(cols_, max_cols);
  for (int64_t r = 0; r < pr; ++r) {
    for (int64_t c = 0; c < pc; ++c) {
      os << Get(r, c) << (c + 1 < pc ? " " : "");
    }
    if (pc < cols_) os << " ...";
    os << "\n";
  }
  if (pr < rows_) os << "...\n";
  return os.str();
}

}  // namespace relm

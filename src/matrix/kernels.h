#ifndef RELM_MATRIX_KERNELS_H_
#define RELM_MATRIX_KERNELS_H_

#include <cstdint>

#include "common/status.h"
#include "matrix/matrix_block.h"
#include "matrix/op_types.h"

namespace relm {

/// Real linear-algebra kernels backing the in-memory (CP) runtime. All
/// kernels validate shapes and return Status errors rather than throwing.

/// Matrix multiply C = A %*% B. Handles dense*dense, sparse*dense,
/// dense*sparse and sparse*sparse (sparse inputs via CSR row iteration).
Result<MatrixBlock> MatMult(const MatrixBlock& a, const MatrixBlock& b);

/// Transpose-self matrix multiply: t(A) %*% A (left) or A %*% t(A) (right).
Result<MatrixBlock> TransposeSelfMatMult(const MatrixBlock& a,
                                         bool left = true);

/// Transpose.
MatrixBlock Transpose(const MatrixBlock& a);

/// Cell-wise binary op with broadcasting: shapes must match, or `b` may be
/// a column vector (same rows), a row vector (same cols), or 1x1.
Result<MatrixBlock> ElementwiseBinary(BinOp op, const MatrixBlock& a,
                                      const MatrixBlock& b);

/// Matrix-scalar op; `scalar_left` computes op(s, A) instead of op(A, s).
MatrixBlock ScalarBinary(BinOp op, const MatrixBlock& a, double scalar,
                         bool scalar_left = false);

/// Cell-wise unary op.
MatrixBlock ElementwiseUnary(UnOp op, const MatrixBlock& a);

/// Full aggregate (sum, min, max, mean, trace).
Result<double> Aggregate(AggOp op, const MatrixBlock& a);

/// Row/column aggregate, e.g. rowSums -> rows x 1, colSums -> 1 x cols.
Result<MatrixBlock> AggregateAxis(AggOp op, AggDir dir, const MatrixBlock& a);

/// ppred(A, s, op): cell-wise comparison against a scalar yielding 0/1.
MatrixBlock PpredScalar(BinOp cmp, const MatrixBlock& a, double scalar);

/// Contingency table: out[v1[i]-1, v2[i]-1] += 1 for column vectors v1, v2
/// of equal length with positive integer entries. Output dims are the max
/// values observed (this is the data-dependent operator with an unknown
/// output size at compile time).
Result<MatrixBlock> Table(const MatrixBlock& v1, const MatrixBlock& v2);

/// Solve A x = b via Gaussian elimination with partial pivoting.
Result<MatrixBlock> Solve(const MatrixBlock& a, const MatrixBlock& b);

/// Horizontal concatenation cbind(A, B).
Result<MatrixBlock> Append(const MatrixBlock& a, const MatrixBlock& b);

/// Right indexing A[rl:ru, cl:cu], 1-based inclusive bounds.
Result<MatrixBlock> RightIndex(const MatrixBlock& a, int64_t rl, int64_t ru,
                               int64_t cl, int64_t cu);

/// Left indexing: copy of A with A[rl:ru, cl:cu] overwritten by V (whose
/// shape must match the index range).
Result<MatrixBlock> LeftIndex(const MatrixBlock& a, const MatrixBlock& v,
                              int64_t rl, int64_t ru, int64_t cl,
                              int64_t cu);

/// diag(v): vector -> diagonal matrix; matrix -> main-diagonal vector.
Result<MatrixBlock> Diag(const MatrixBlock& a);

/// Value of a 1x1 matrix (as.scalar).
Result<double> CastToScalar(const MatrixBlock& a);

}  // namespace relm

#endif  // RELM_MATRIX_KERNELS_H_

#ifndef RELM_SCHED_ROUND_ROBIN_SCHEDULER_H_
#define RELM_SCHED_ROUND_ROBIN_SCHEDULER_H_

// The pre-refactor JobService scheduling logic, extracted verbatim:
// per-tenant FIFO queues, a round-robin rotation over tenants with
// queued work, and the two admission caps (global queue depth,
// per-tenant queued jobs). Behavior-preserving by construction and by
// differential test (tests/sched_test.cc drives this class and a
// reference model of the old JobService code with identical op
// sequences).

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "sched/scheduler.h"

namespace relm {
namespace sched {

class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(const SchedulerLimits& limits);

  const char* name() const override { return "round_robin"; }

  Status Admit(const SchedEntry& entry) override;
  std::optional<SchedDecision> Dequeue(double now_seconds) override;
  bool HasRunnable(double now_seconds) const override;
  void OnJobFinished(const std::string& tenant) override;
  int queued() const override { return queued_; }
  SchedulerStats stats() const override { return stats_; }

 private:
  SchedulerLimits limits_;
  // Per-tenant FIFO queues plus the round-robin order of tenants that
  // currently have queued work (the exact structures the JobService
  // used to own).
  std::map<std::string, std::deque<SchedEntry>> queues_;
  std::deque<std::string> tenant_rr_;
  int queued_ = 0;
  int running_ = 0;
  SchedulerStats stats_;
};

}  // namespace sched
}  // namespace relm

#endif  // RELM_SCHED_ROUND_ROBIN_SCHEDULER_H_

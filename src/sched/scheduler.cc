#include "sched/scheduler.h"

#include <limits>
#include <utility>

#include "sched/cost_aware_scheduler.h"
#include "sched/round_robin_scheduler.h"

namespace relm {
namespace sched {

double SchedEntry::AbsoluteDeadline() const {
  if (deadline_seconds <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return submit_seconds + deadline_seconds;
}

double SchedEntry::Slack() const {
  const double abs_deadline = AbsoluteDeadline();
  if (abs_deadline == std::numeric_limits<double>::infinity()) {
    return abs_deadline;
  }
  return abs_deadline -
         (cost_estimate_seconds >= 0.0 ? cost_estimate_seconds : 0.0);
}

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return "round_robin";
    case SchedulerPolicy::kCostAware:
      return "cost_aware";
  }
  return "unknown";
}

std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerPolicy policy, const SchedulerLimits& limits,
    const std::map<std::string, TenantQuota>& quotas) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(limits);
    case SchedulerPolicy::kCostAware:
      return std::make_unique<CostAwareScheduler>(limits, quotas);
  }
  return std::make_unique<RoundRobinScheduler>(limits);
}

}  // namespace sched
}  // namespace relm

#include "sched/round_robin_scheduler.h"

#include <utility>

#include "obs/metrics.h"

namespace relm {
namespace sched {

RoundRobinScheduler::RoundRobinScheduler(const SchedulerLimits& limits)
    : limits_(limits) {}

Status RoundRobinScheduler::Admit(const SchedEntry& entry) {
  // Admission control, stage 1: queue depth. The messages match the
  // pre-refactor JobService strings exactly — callers and tests key off
  // them, and the differential test compares them verbatim.
  if (queued_ + running_ >= limits_.max_pending_jobs) {
    stats_.rejected++;
    RELM_COUNTER_INC("sched.rejected");
    return Status::ResourceError(
        "admission control: service at capacity (" +
        std::to_string(queued_ + running_) + " jobs pending)");
  }
  auto& tenant_queue = queues_[entry.tenant];
  if (static_cast<int>(tenant_queue.size()) >=
      limits_.max_queued_per_tenant) {
    stats_.rejected++;
    RELM_COUNTER_INC("sched.rejected");
    return Status::ResourceError("admission control: tenant \"" +
                                 entry.tenant + "\" queue quota exceeded");
  }
  if (tenant_queue.empty()) tenant_rr_.push_back(entry.tenant);
  tenant_queue.push_back(entry);
  queued_++;
  stats_.admitted++;
  RELM_COUNTER_INC("sched.admitted");
  return Status::OK();
}

std::optional<SchedDecision> RoundRobinScheduler::Dequeue(
    double now_seconds) {
  (void)now_seconds;  // FIFO rotation is time-blind
  if (tenant_rr_.empty()) return std::nullopt;
  // Round-robin: serve the head of the front tenant's FIFO, then move
  // that tenant to the back if it still has queued work. A tenant with
  // one job interleaves with a tenant that queued fifty.
  const std::string tenant = tenant_rr_.front();
  tenant_rr_.pop_front();
  auto it = queues_.find(tenant);
  SchedEntry entry = std::move(it->second.front());
  it->second.pop_front();
  if (!it->second.empty()) {
    tenant_rr_.push_back(tenant);
  } else {
    queues_.erase(it);
  }
  queued_--;
  running_++;
  stats_.dispatched++;
  RELM_COUNTER_INC("sched.dispatched");
  return SchedDecision{entry.job_id, "rr"};
}

bool RoundRobinScheduler::HasRunnable(double now_seconds) const {
  (void)now_seconds;
  return !tenant_rr_.empty();
}

void RoundRobinScheduler::OnJobFinished(const std::string& tenant) {
  (void)tenant;
  if (running_ > 0) running_--;
}

}  // namespace sched
}  // namespace relm

#include "sched/cost_aware_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace relm {
namespace sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Total order of the dequeue policy: true when `a` should dispatch
/// before `b`.
bool Precedes(const SchedEntry& a, const SchedEntry& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  const double slack_a = a.Slack();
  const double slack_b = b.Slack();
  if (slack_a != slack_b) return slack_a < slack_b;
  const double cost_a =
      a.cost_estimate_seconds >= 0.0 ? a.cost_estimate_seconds : kInf;
  const double cost_b =
      b.cost_estimate_seconds >= 0.0 ? b.cost_estimate_seconds : kInf;
  if (cost_a != cost_b) return cost_a < cost_b;
  return a.job_id < b.job_id;
}

}  // namespace

CostAwareScheduler::CostAwareScheduler(
    const SchedulerLimits& limits, std::map<std::string, TenantQuota> quotas)
    : limits_(limits), quotas_(std::move(quotas)) {}

bool CostAwareScheduler::InQuota(const std::string& tenant) const {
  auto qit = quotas_.find(tenant);
  if (qit == quotas_.end() || qit->second.unlimited()) return true;
  auto uit = usage_.find(tenant);
  if (uit == usage_.end()) return true;
  const TenantQuota& quota = qit->second;
  const Usage& usage = uit->second;
  if (quota.memory_bytes > 0 && usage.memory_bytes >= quota.memory_bytes) {
    return false;
  }
  if (quota.vcores > 0 && usage.vcores >= quota.vcores) return false;
  return true;
}

Status CostAwareScheduler::Admit(const SchedEntry& entry) {
  // Same two admission caps (and messages) as the round-robin baseline:
  // quota state never rejects a submission, it only defers dispatch and
  // weakens capacity priority.
  if (static_cast<int>(queue_.size()) + running_ >=
      limits_.max_pending_jobs) {
    stats_.rejected++;
    RELM_COUNTER_INC("sched.rejected");
    return Status::ResourceError(
        "admission control: service at capacity (" +
        std::to_string(static_cast<int>(queue_.size()) + running_) +
        " jobs pending)");
  }
  int& tenant_queued = queued_per_tenant_[entry.tenant];
  if (tenant_queued >= limits_.max_queued_per_tenant) {
    stats_.rejected++;
    RELM_COUNTER_INC("sched.rejected");
    return Status::ResourceError("admission control: tenant \"" +
                                 entry.tenant + "\" queue quota exceeded");
  }
  tenant_queued++;
  queue_.push_back(entry);
  stats_.admitted++;
  RELM_COUNTER_INC("sched.admitted");
  return Status::OK();
}

int CostAwareScheduler::PickLocked(bool in_quota_only) const {
  int best = -1;
  for (int i = 0; i < static_cast<int>(queue_.size()); ++i) {
    if (in_quota_only && !InQuota(queue_[i].tenant)) continue;
    if (best < 0 || Precedes(queue_[i], queue_[best])) best = i;
  }
  return best;
}

std::optional<SchedDecision> CostAwareScheduler::Dequeue(
    double now_seconds) {
  if (queue_.empty()) return std::nullopt;
  bool held_back = false;
  int pick = PickLocked(/*in_quota_only=*/true);
  if (pick >= 0) {
    // In-quota work dispatched while over-quota entries sit queued:
    // that is the quota doing its job, counted for observability.
    for (const SchedEntry& e : queue_) {
      if (!InQuota(e.tenant)) {
        held_back = true;
        break;
      }
    }
  } else {
    // Work-conserving backfill: everything queued is over quota, so run
    // the best of it rather than idling the cluster. Its containers
    // stay preemptible.
    pick = PickLocked(/*in_quota_only=*/false);
  }
  if (pick < 0) return std::nullopt;

  SchedEntry entry = std::move(queue_[static_cast<size_t>(pick)]);
  queue_.erase(queue_.begin() + pick);
  auto qit = queued_per_tenant_.find(entry.tenant);
  if (qit != queued_per_tenant_.end() && --qit->second <= 0) {
    queued_per_tenant_.erase(qit);
  }
  running_++;
  usage_[entry.tenant].running_jobs++;
  stats_.dispatched++;
  RELM_COUNTER_INC("sched.dispatched");
  if (held_back) {
    stats_.held_over_quota++;
    RELM_COUNTER_INC("sched.held_over_quota");
  }

  const bool in_quota = InQuota(entry.tenant);
  char reason[96];
  const double slack = entry.Slack();
  if (slack == kInf) {
    std::snprintf(reason, sizeof(reason), "cost_aware:%s",
                  in_quota ? "no_deadline" : "over_quota_backfill");
  } else {
    std::snprintf(reason, sizeof(reason), "cost_aware:slack=%.3fs%s",
                  slack - now_seconds,
                  in_quota ? "" : ":over_quota_backfill");
  }
  return SchedDecision{entry.job_id, reason};
}

bool CostAwareScheduler::HasRunnable(double now_seconds) const {
  (void)now_seconds;
  // Work-conserving: anything queued is runnable now (over-quota work
  // backfills when it is alone).
  return !queue_.empty();
}

void CostAwareScheduler::OnJobFinished(const std::string& tenant) {
  if (running_ > 0) running_--;
  auto it = usage_.find(tenant);
  if (it == usage_.end()) return;
  if (it->second.running_jobs > 0) it->second.running_jobs--;
  if (it->second.running_jobs == 0 && it->second.memory_bytes <= 0 &&
      it->second.vcores <= 0) {
    usage_.erase(it);
  }
}

void CostAwareScheduler::OnCapacityAcquired(const std::string& tenant,
                                            int64_t memory_bytes,
                                            int vcores) {
  Usage& usage = usage_[tenant];
  usage.memory_bytes += memory_bytes;
  usage.vcores += vcores;
}

void CostAwareScheduler::OnCapacityReleased(const std::string& tenant,
                                            int64_t memory_bytes,
                                            int vcores) {
  auto it = usage_.find(tenant);
  if (it == usage_.end()) return;
  it->second.memory_bytes = std::max<int64_t>(
      0, it->second.memory_bytes - memory_bytes);
  it->second.vcores = std::max(0, it->second.vcores - vcores);
}

int CostAwareScheduler::AllocationPriority(const std::string& tenant,
                                           int request_priority) const {
  if (InQuota(tenant)) {
    // The boost is a hard floor: an in-quota tenant outranks every
    // over-quota container regardless of what either side requested, so
    // negative request priorities saturate at the floor.
    return kQuotaBoost + std::clamp(request_priority, 0, kQuotaBoost - 1);
  }
  return std::clamp(request_priority, -(kQuotaBoost - 1), kQuotaBoost - 1);
}

}  // namespace sched
}  // namespace relm

#ifndef RELM_SCHED_SCHEDULER_H_
#define RELM_SCHED_SCHEDULER_H_

// Pluggable multi-tenant job scheduling, extracted from the serving
// tier (DESIGN.md §16). A Scheduler owns the queueing, ordering, and
// admission decisions the JobService used to hard-code; the service
// keeps the mechanism (worker pool, capacity grants, retries) and asks
// the policy what to run next.
//
// Two policies ship:
//   RoundRobinScheduler — the pre-refactor behavior, extracted verbatim:
//     per-tenant FIFO queues served round-robin, queue-depth and
//     per-tenant admission caps. Differential-tested against a reference
//     model of the old JobService ordering.
//   CostAwareScheduler  — per-tenant memory/vcore quotas, least-slack
//     ordering driven by cached what-if runtime estimates (a CostOracle
//     adapter over the PlanCache, core/cost_oracle.h), and priority
//     preemption of over-quota tenants' containers through the
//     ResourceManager (yarn/resource_manager.h).
//
// Threading contract: a Scheduler is NOT internally synchronized. The
// owning service serializes every call under its own mutex (the same
// lock that guards its queue bookkeeping), which keeps the policy logic
// single-threaded and trivially testable.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace relm {
namespace sched {

/// Per-tenant resource quota. A field of 0 means unlimited in that
/// dimension; a tenant is "over quota" once its *running* usage reaches
/// either limit. Quotas are elastic (capacity-scheduler semantics):
/// over-quota work still runs when nothing in-quota is runnable, but it
/// is dispatched last and its containers are granted at low priority,
/// so an in-quota tenant's allocation can preempt them.
struct TenantQuota {
  int64_t memory_bytes = 0;
  int vcores = 0;

  bool unlimited() const { return memory_bytes <= 0 && vcores <= 0; }
};

/// Admission limits shared by every policy (mirrors ServeOptions).
struct SchedulerLimits {
  int max_pending_jobs = 256;
  int max_queued_per_tenant = 64;
};

/// Typed view of one schedulable job: everything a policy may order or
/// gate on, nothing it may not (the request body stays in the service).
struct SchedEntry {
  uint64_t job_id = 0;
  std::string tenant;
  /// Submission time in service-epoch seconds (monotonic).
  double submit_seconds = 0.0;
  /// Wall-clock deadline measured from submission; <= 0 means none.
  double deadline_seconds = 0.0;
  /// Cached what-if runtime estimate for this job's plan, in seconds;
  /// < 0 when no estimate is known yet (first sight of the script).
  double cost_estimate_seconds = -1.0;
  /// Caller-declared urgency (JobRequest::priority, higher wins).
  int priority = 0;
  /// Execution attempt about to run (1 on first admission; re-admitted
  /// preemption victims carry their attempt count).
  int attempt = 1;

  /// Absolute deadline on the service epoch; +inf when none.
  double AbsoluteDeadline() const;
  /// Scheduling slack: absolute deadline minus the runtime estimate
  /// (least slack = most urgent). +inf when no deadline.
  double Slack() const;
};

/// One dispatch decision: which job to run and a short human/trace tag
/// describing why (stamped onto the job's TraceContext by the service).
struct SchedDecision {
  uint64_t job_id = 0;
  std::string reason;
};

/// How the policy wants execution-time capacity granted.
enum class CapacityMode {
  /// Ticket-ordered FIFO grants against a global inflight-bytes cap
  /// (the pre-refactor JobService mechanism).
  kFifoByteCap = 0,
  /// Per-node container placement through a ResourceManager with
  /// priority preemption: allocations carry AllocationPriority(), and
  /// an in-quota tenant's grant may preempt over-quota containers.
  kPreemptiveRm,
};

/// Point-in-time policy counters (also exported via sched.* metrics).
struct SchedulerStats {
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t dispatched = 0;
  /// Dispatches where at least one queued over-quota entry was passed
  /// over in favor of in-quota work.
  int64_t held_over_quota = 0;
};

/// Runtime-estimate source for cost-aware policies. Implemented in
/// core/cost_oracle.h as a read-through adapter over the PlanCache's
/// what-if cost cache; the interface lives here so the sched library
/// depends only on common/.
class CostOracle {
 public:
  virtual ~CostOracle() = default;
  /// Estimated runtime (seconds) of the plan behind `script_signature`,
  /// served from cache — never recomputed. < 0 when unknown.
  virtual double EstimateRuntimeSeconds(uint64_t script_signature) const = 0;
};

/// The policy interface. All calls are externally synchronized by the
/// owning service (see the threading contract above).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  /// Admission at submit time: OK enqueues the entry; a non-OK status
  /// (typed ResourceError) rejects the submission and is returned to
  /// the caller verbatim.
  virtual Status Admit(const SchedEntry& entry) = 0;

  /// Picks the next job to dispatch, or nullopt when nothing should
  /// run now. `now_seconds` is the service-epoch clock. The picked job
  /// counts as running until OnJobFinished.
  virtual std::optional<SchedDecision> Dequeue(double now_seconds) = 0;

  /// Whether Dequeue(now) would return a job. Used as the worker wait
  /// predicate; must be consistent with Dequeue.
  virtual bool HasRunnable(double now_seconds) const = 0;

  /// A previously dequeued job of `tenant` resolved (any terminal
  /// state). Balances the running count taken by Dequeue.
  virtual void OnJobFinished(const std::string& tenant) = 0;

  /// Capacity lifecycle notifications (quota usage accounting). The
  /// service reports each granted AM container's memory and the
  /// configuration's CP cores; kFifoByteCap policies may ignore them.
  virtual void OnCapacityAcquired(const std::string& tenant,
                                  int64_t memory_bytes, int vcores) {
    (void)tenant;
    (void)memory_bytes;
    (void)vcores;
  }
  virtual void OnCapacityReleased(const std::string& tenant,
                                  int64_t memory_bytes, int vcores) {
    (void)tenant;
    (void)memory_bytes;
    (void)vcores;
  }

  virtual CapacityMode capacity_mode() const {
    return CapacityMode::kFifoByteCap;
  }

  /// Container-allocation priority for a tenant's grant under the
  /// current quota state (kPreemptiveRm mode). In-quota tenants must
  /// outrank over-quota tenants regardless of request priority.
  virtual int AllocationPriority(const std::string& tenant,
                                 int request_priority) const {
    (void)tenant;
    return request_priority;
  }

  /// Jobs currently queued (admitted, not yet dequeued).
  virtual int queued() const = 0;

  virtual SchedulerStats stats() const = 0;
};

/// Which shipped policy a service should construct.
enum class SchedulerPolicy {
  kRoundRobin = 0,
  kCostAware,
};

const char* SchedulerPolicyName(SchedulerPolicy policy);

/// Builds one of the shipped policies. `quotas` is only consulted by
/// the cost-aware policy; tenants absent from the map are unlimited.
std::unique_ptr<Scheduler> MakeScheduler(
    SchedulerPolicy policy, const SchedulerLimits& limits,
    const std::map<std::string, TenantQuota>& quotas = {});

}  // namespace sched
}  // namespace relm

#endif  // RELM_SCHED_SCHEDULER_H_

#ifndef RELM_SCHED_COST_AWARE_SCHEDULER_H_
#define RELM_SCHED_COST_AWARE_SCHEDULER_H_

// Cost-aware multi-tenant SLO scheduling (DESIGN.md §16): least-slack
// ordering over cached what-if runtime estimates, elastic per-tenant
// memory/vcore quotas, and priority preemption of over-quota tenants.
//
// Ordering (Dequeue) — among runnable entries, pick by:
//   1. higher request priority;
//   2. ascending slack = absolute deadline - runtime estimate (a job
//      with a larger estimated runtime has less slack and dispatches
//      earlier; no deadline = infinite slack, so deadline jobs always
//      precede deadline-free ones);
//   3. ascending runtime estimate (shortest-job-first; unknown last);
//   4. FIFO by job id.
//
// Quota gating — a tenant whose *running* usage (granted AM container
// bytes, CP vcores) has reached its quota is runnable only when no
// in-quota tenant has queued work (work-conserving backfill: the
// cluster never idles while work exists). Enforcement teeth come from
// capacity, not the queue: over-quota tenants' containers are granted
// at low priority, so AllocateWithPreemption reclaims them the moment
// an in-quota tenant needs the room.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace relm {
namespace sched {

class CostAwareScheduler : public Scheduler {
 public:
  CostAwareScheduler(const SchedulerLimits& limits,
                     std::map<std::string, TenantQuota> quotas);

  const char* name() const override { return "cost_aware"; }

  Status Admit(const SchedEntry& entry) override;
  std::optional<SchedDecision> Dequeue(double now_seconds) override;
  bool HasRunnable(double now_seconds) const override;
  void OnJobFinished(const std::string& tenant) override;
  void OnCapacityAcquired(const std::string& tenant, int64_t memory_bytes,
                          int vcores) override;
  void OnCapacityReleased(const std::string& tenant, int64_t memory_bytes,
                          int vcores) override;
  CapacityMode capacity_mode() const override {
    return CapacityMode::kPreemptiveRm;
  }
  /// In-quota tenants are boosted past every possible over-quota
  /// priority: over-quota requests clamp to +/-(kQuotaBoost-1), while
  /// in-quota requests clamp to [0, kQuotaBoost-1] on top of the boost,
  /// so an in-quota grant always wins a preemption contest against an
  /// over-quota container and never against another in-quota one.
  int AllocationPriority(const std::string& tenant,
                         int request_priority) const override;
  int queued() const override { return static_cast<int>(queue_.size()); }
  SchedulerStats stats() const override { return stats_; }

  /// Whether `tenant` currently has head-room under its quota.
  bool InQuota(const std::string& tenant) const;

  static constexpr int kQuotaBoost = 1000;

 private:
  /// Index into queue_ of the best entry per the ordering above, or -1.
  /// When `in_quota_only`, entries of over-quota tenants are skipped.
  int PickLocked(bool in_quota_only) const;

  struct Usage {
    int64_t memory_bytes = 0;
    int vcores = 0;
    int running_jobs = 0;
  };

  SchedulerLimits limits_;
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, Usage> usage_;
  std::map<std::string, int> queued_per_tenant_;
  std::vector<SchedEntry> queue_;
  int running_ = 0;
  SchedulerStats stats_;
};

}  // namespace sched
}  // namespace relm

#endif  // RELM_SCHED_COST_AWARE_SCHEDULER_H_

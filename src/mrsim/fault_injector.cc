#include "mrsim/fault_injector.h"

#include <algorithm>
#include <string>

namespace relm {

bool FaultPlan::enabled() const {
  return !node_crashes.empty() || !preemptions.empty() ||
         transient_task_failure_rate > 0.0 || straggler_probability > 0.0 ||
         am_crash_at_seconds >= 0.0;
}

Status FaultPlan::Validate() const {
  if (transient_task_failure_rate < 0.0 ||
      transient_task_failure_rate > 1.0) {
    return Status::InvalidArgument(
        "transient_task_failure_rate must be in [0,1]");
  }
  if (straggler_probability < 0.0 || straggler_probability > 1.0) {
    return Status::InvalidArgument(
        "straggler_probability must be in [0,1]");
  }
  if (straggler_slowdown < 1.0) {
    return Status::InvalidArgument("straggler_slowdown must be >= 1");
  }
  if (max_task_attempts < 1) {
    return Status::InvalidArgument("max_task_attempts must be >= 1");
  }
  if (retry_backoff_seconds < 0.0) {
    return Status::InvalidArgument("retry_backoff_seconds must be >= 0");
  }
  if (speculation_threshold < 1.0) {
    return Status::InvalidArgument("speculation_threshold must be >= 1");
  }
  for (const NodeCrash& crash : node_crashes) {
    if (crash.node < 0) {
      return Status::InvalidArgument("node crash index must be >= 0");
    }
    if (crash.at_seconds < 0.0) {
      return Status::InvalidArgument("node crash time must be >= 0");
    }
  }
  for (const PreemptionEvent& ev : preemptions) {
    if (ev.at_seconds < 0.0) {
      return Status::InvalidArgument("preemption time must be >= 0");
    }
    if (ev.slot_fraction <= 0.0 || ev.slot_fraction > 1.0) {
      return Status::InvalidArgument(
          "preemption slot_fraction must be in (0,1]");
    }
    if (ev.duration_seconds <= 0.0) {
      return Status::InvalidArgument("preemption duration must be > 0");
    }
  }
  return Status::OK();
}

namespace {
/// Seed perturbation so fault draws never alias the simulator's noise
/// sequence for the same user seed.
constexpr uint64_t kFaultSeedSalt = 0x5DEECE66DULL;
}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t seed)
    : plan_(plan),
      enabled_(plan.enabled()),
      rng_(seed ^ kFaultSeedSalt),
      crash_delivered_(plan.node_crashes.size(), false),
      recovery_delivered_(plan.node_crashes.size(), false),
      preemption_delivered_(plan.preemptions.size(), false) {}

std::vector<NodeCrash> FaultInjector::TakeCrashesDue(double now) {
  std::vector<NodeCrash> due;
  for (size_t i = 0; i < plan_.node_crashes.size(); ++i) {
    if (crash_delivered_[i]) continue;
    if (plan_.node_crashes[i].at_seconds <= now) {
      crash_delivered_[i] = true;
      due.push_back(plan_.node_crashes[i]);
    }
  }
  return due;
}

std::vector<int> FaultInjector::TakeRecoveriesDue(double now) {
  std::vector<int> due;
  for (size_t i = 0; i < plan_.node_crashes.size(); ++i) {
    const NodeCrash& crash = plan_.node_crashes[i];
    if (!crash_delivered_[i] || recovery_delivered_[i]) continue;
    if (crash.recover_after_seconds < 0.0) continue;
    if (crash.at_seconds + crash.recover_after_seconds <= now) {
      recovery_delivered_[i] = true;
      due.push_back(crash.node);
    }
  }
  return due;
}

std::vector<PreemptionEvent> FaultInjector::TakePreemptionsDue(double now) {
  std::vector<PreemptionEvent> due;
  for (size_t i = 0; i < plan_.preemptions.size(); ++i) {
    if (preemption_delivered_[i]) continue;
    if (plan_.preemptions[i].at_seconds <= now) {
      preemption_delivered_[i] = true;
      due.push_back(plan_.preemptions[i]);
    }
  }
  return due;
}

double FaultInjector::PreemptedFraction(double now) const {
  double fraction = 0.0;
  for (const PreemptionEvent& ev : plan_.preemptions) {
    if (ev.at_seconds <= now &&
        now < ev.at_seconds + ev.duration_seconds) {
      fraction += ev.slot_fraction;
    }
  }
  return std::min(fraction, 0.95);
}

bool FaultInjector::TakeAmCrashDue(double now) {
  if (am_crash_delivered_ || plan_.am_crash_at_seconds < 0.0) return false;
  if (plan_.am_crash_at_seconds <= now) {
    am_crash_delivered_ = true;
    return true;
  }
  return false;
}

bool FaultInjector::DrawTaskFailure() {
  if (plan_.transient_task_failure_rate <= 0.0) return false;
  if (plan_.transient_task_failure_rate >= 1.0) return true;
  return rng_.NextDouble() < plan_.transient_task_failure_rate;
}

bool FaultInjector::DrawStraggler() {
  if (plan_.straggler_probability <= 0.0) return false;
  if (plan_.straggler_probability >= 1.0) return true;
  return rng_.NextDouble() < plan_.straggler_probability;
}

}  // namespace relm

#include "mrsim/buffer_pool.h"

#include <vector>

namespace relm {

std::vector<BufferPool::Evicted> BufferPool::Put(const std::string& name,
                                                 int64_t bytes, bool dirty) {
  std::vector<Evicted> evicted;
  Remove(name);
  if (bytes > capacity_) {
    // Oversized object: stream-through, never resident.
    ++evictions_;
    evicted.push_back(Evicted{name, bytes, dirty});
    return evicted;
  }
  while (used_ + bytes > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    auto it = entries_.find(victim);
    evicted.push_back(Evicted{victim, it->second.bytes, it->second.dirty});
    used_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
    ++evictions_;
  }
  lru_.push_front(name);
  Entry e;
  e.bytes = bytes;
  e.dirty = dirty;
  e.lru_it = lru_.begin();
  entries_[name] = e;
  used_ += bytes;
  return evicted;
}

bool BufferPool::Touch(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_it);
  lru_.push_front(name);
  it->second.lru_it = lru_.begin();
  return true;
}

void BufferPool::MarkClean(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) it->second.dirty = false;
}

void BufferPool::Remove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void BufferPool::Clear() {
  entries_.clear();
  lru_.clear();
  used_ = 0;
}

}  // namespace relm

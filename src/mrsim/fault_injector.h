#ifndef RELM_MRSIM_FAULT_INJECTOR_H_
#define RELM_MRSIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace relm {

/// One scheduled node crash: worker `node` dies at `at_seconds` of
/// simulated time. A non-negative `recover_after_seconds` recommissions
/// the node that much later (NodeManager restart); negative means the
/// node is lost for the rest of the run.
struct NodeCrash {
  int node = 0;
  double at_seconds = 0.0;
  double recover_after_seconds = -1.0;
};

/// One preemption event: at `at_seconds`, co-tenant pressure reclaims
/// `slot_fraction` of the cluster's MR task slots (and the matching
/// memory) for `duration_seconds`. Mirrors YARN capacity-scheduler
/// preemption when a queue exceeds its share.
struct PreemptionEvent {
  double at_seconds = 0.0;
  double slot_fraction = 0.25;
  double duration_seconds = 60.0;
};

/// Deterministic fault schedule for one simulated execution. The plan
/// combines timed events (node crashes, preemption windows, an AM crash
/// point) with rate-based faults (transient task failures, stragglers)
/// drawn from a seeded RNG, so the same seed and plan always reproduce
/// the same failure sequence and therefore the same SimResult.
struct FaultPlan {
  /// Timed node crashes (and optional recoveries).
  std::vector<NodeCrash> node_crashes;
  /// Timed co-tenant preemption windows.
  std::vector<PreemptionEvent> preemptions;
  /// Probability that one map-task attempt fails transiently (lost JVM,
  /// disk hiccup, killed container). Each retry draws independently.
  double transient_task_failure_rate = 0.0;
  /// Probability that a task wave contains a straggler, and the factor
  /// by which the straggling task runs slower than its peers.
  double straggler_probability = 0.0;
  double straggler_slowdown = 2.5;
  /// Simulated time at which the application master's container dies
  /// (negative disables). Recovery restarts the AM and, with adaptation
  /// enabled, routes through the re-optimization/migration path.
  double am_crash_at_seconds = -1.0;

  /// ---- recovery policy ----
  /// Maximum attempts per task (YARN's mapreduce.map.maxattempts);
  /// exhausting them fails the whole run.
  int max_task_attempts = 4;
  /// Base of the exponential retry backoff: attempt k waits
  /// `retry_backoff_seconds * 2^(k-1)` before relaunching.
  double retry_backoff_seconds = 0.5;
  /// A straggler at least this many times slower than its wave triggers
  /// speculative re-execution (Hadoop's speculative execution).
  double speculation_threshold = 1.8;

  /// True when any fault source is configured. A disabled plan must
  /// leave simulation results bit-identical to a fault-free build.
  bool enabled() const;

  /// Rejects malformed plans (rates outside [0,1], non-positive attempt
  /// caps, node indices below zero, ...).
  Status Validate() const;
};

/// Consumes a FaultPlan during one simulated run: delivers each timed
/// event exactly once as simulated time advances and draws rate-based
/// faults from a private seeded RNG (decoupled from the simulator's
/// noise RNG so enabling faults never perturbs the noise sequence).
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, uint64_t seed);

  bool enabled() const { return enabled_; }
  const FaultPlan& plan() const { return plan_; }

  /// Node crashes scheduled at or before `now`, each delivered once.
  std::vector<NodeCrash> TakeCrashesDue(double now);

  /// Nodes whose recovery time (crash + recover_after) has arrived.
  std::vector<int> TakeRecoveriesDue(double now);

  /// Preemption events starting at or before `now`, each delivered once.
  std::vector<PreemptionEvent> TakePreemptionsDue(double now);

  /// Fraction of MR slots reclaimed by co-tenants at `now` (sum of the
  /// active preemption windows, capped at 0.95).
  double PreemptedFraction(double now) const;

  /// True exactly once, when `now` has passed the AM crash point.
  bool TakeAmCrashDue(double now);

  /// Seeded draw: does this task attempt fail transiently?
  bool DrawTaskFailure();

  /// Seeded draw: does this task wave contain a straggler?
  bool DrawStraggler();

 private:
  FaultPlan plan_;
  bool enabled_;
  Random rng_;
  std::vector<bool> crash_delivered_;
  std::vector<bool> recovery_delivered_;
  std::vector<bool> preemption_delivered_;
  bool am_crash_delivered_ = false;
};

}  // namespace relm

#endif  // RELM_MRSIM_FAULT_INJECTOR_H_

#ifndef RELM_MRSIM_BUFFER_POOL_H_
#define RELM_MRSIM_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

namespace relm {

/// LRU buffer pool of in-memory variables in the control program.
/// Tracks pinned bytes against a capacity; inserting beyond capacity
/// evicts least-recently-used entries, which the simulator charges as
/// write (for dirty entries) and later re-read IO. This is exactly the
/// second-order effect the analytic cost model only partially considers
/// (a documented source of suboptimality in the paper).
class BufferPool {
 public:
  explicit BufferPool(int64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  struct Evicted {
    std::string name;
    int64_t bytes = 0;
    bool dirty = false;
  };

  /// Inserts or touches a variable; returns the entries evicted to make
  /// room (empty if it fits). Oversized single entries simply bypass the
  /// pool (stream-through), reported as an eviction of themselves.
  std::vector<Evicted> Put(const std::string& name, int64_t bytes,
                           bool dirty);

  /// Marks a variable accessed (LRU touch); false if not resident.
  bool Touch(const std::string& name);

  /// True if the variable is resident.
  bool Contains(const std::string& name) const {
    return entries_.count(name) > 0;
  }

  /// Marks a resident variable clean (after an export to HDFS).
  void MarkClean(const std::string& name);

  /// Removes a variable (e.g. on overwrite with a new version).
  void Remove(const std::string& name);

  /// Drops everything (AM migration: the new container starts cold).
  void Clear();

  int64_t used_bytes() const { return used_; }
  int64_t capacity() const { return capacity_; }
  void set_capacity(int64_t capacity) { capacity_ = capacity; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    int64_t bytes = 0;
    bool dirty = false;
    std::list<std::string>::iterator lru_it;
  };

  int64_t capacity_;
  int64_t used_ = 0;
  int64_t evictions_ = 0;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
};

}  // namespace relm

#endif  // RELM_MRSIM_BUFFER_POOL_H_

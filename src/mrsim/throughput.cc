#include "mrsim/throughput.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "yarn/resource_manager.h"

namespace relm {

ThroughputResult SimulateThroughput(const ClusterConfig& cc,
                                    int64_t am_container_bytes,
                                    double solo_app_seconds, int num_users,
                                    int apps_per_user,
                                    double io_saturation_alpha) {
  ThroughputResult out;
  const int total_apps = num_users * apps_per_user;
  if (total_apps == 0 || solo_app_seconds <= 0) return out;

  ResourceManager rm(cc);

  struct RunningApp {
    double remaining_work;  // seconds of solo-speed work left
    Container container;
    int user;
  };
  // Each user runs apps back-to-back: one pending submission per user
  // until their quota is exhausted.
  std::vector<int> apps_left(num_users, apps_per_user);
  std::deque<int> submit_queue;  // users with a pending submission
  for (int u = 0; u < num_users; ++u) submit_queue.push_back(u);

  std::vector<RunningApp> running;
  double now = 0.0;
  int completed = 0;

  auto try_admit = [&]() {
    // FIFO admission while capacity remains.
    while (!submit_queue.empty()) {
      int user = submit_queue.front();
      auto c = rm.Allocate(am_container_bytes);
      if (!c.ok()) break;
      submit_queue.pop_front();
      running.push_back(RunningApp{solo_app_seconds, *c, user});
      --apps_left[user];
    }
  };

  try_admit();
  out.max_concurrent = static_cast<int>(running.size());

  while (completed < total_apps) {
    if (running.empty()) break;  // should not happen
    // Processor-sharing with IO saturation: every running app progresses
    // at rate 1 / (1 + alpha * (k - 1)).
    double k = static_cast<double>(running.size());
    double rate = 1.0 / (1.0 + io_saturation_alpha * (k - 1.0));
    // Next completion.
    double min_work = std::numeric_limits<double>::infinity();
    size_t next = 0;
    for (size_t i = 0; i < running.size(); ++i) {
      if (running[i].remaining_work < min_work) {
        min_work = running[i].remaining_work;
        next = i;
      }
    }
    double dt = min_work / rate;
    now += dt;
    for (auto& app : running) app.remaining_work -= dt * rate;
    // Complete the finished app (and any that reached ~zero).
    for (size_t i = running.size(); i-- > 0;) {
      if (running[i].remaining_work <= 1e-9) {
        rm.Release(running[i].container);
        int user = running[i].user;
        running.erase(running.begin() + i);
        ++completed;
        if (apps_left[user] > 0) submit_queue.push_back(user);
      }
    }
    (void)next;
    try_admit();
    out.max_concurrent =
        std::max(out.max_concurrent, static_cast<int>(running.size()));
  }

  out.total_seconds = now;
  out.apps_completed = completed;
  out.apps_per_minute = completed / (now / 60.0);
  return out;
}

}  // namespace relm

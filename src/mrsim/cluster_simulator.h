#ifndef RELM_MRSIM_CLUSTER_SIMULATOR_H_
#define RELM_MRSIM_CLUSTER_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/resource_optimizer.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "exec/memory_manager.h"
#include "mrsim/fault_injector.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Options of the measured-execution cluster simulator.
struct SimOptions {
  /// Runtime resource adaptation (Section 4): re-optimization plus AM
  /// migration when dynamic recompilation spawns MR jobs.
  bool enable_adaptation = false;
  /// Dynamic recompilation of blocks once unknown sizes become known.
  bool enable_dynamic_recompilation = true;
  /// Optimizer settings used for runtime re-optimization.
  OptimizerOptions optimizer;
  /// Multiplicative reproducible noise applied per block (0 disables).
  double noise = 0.02;
  uint64_t seed = 42;
  /// IO contention multiplier (>1 under multi-tenancy).
  double io_contention = 1.0;
  /// Safety cap on simulated loop iterations.
  int64_t max_loop_iterations = 1000;

  /// ---- cluster-utilization-based adaptation (Section 6 extension) ----
  /// Initial fraction of MR slots occupied by other tenants.
  double cluster_load = 0.0;
  /// At this simulated time the load changes to `new_cluster_load`
  /// (negative disables). With adaptation enabled, the change triggers a
  /// resource re-optimization at the next block that schedules MR jobs
  /// (e.g. falling back to single-node in-memory execution on a loaded
  /// cluster).
  double load_change_at_seconds = -1.0;
  double new_cluster_load = 0.0;

  /// ---- fault injection (robustness extension) ----
  /// Deterministic fault schedule: node crashes, co-tenant preemption,
  /// transient task failures, stragglers, AM crash. Disabled by default;
  /// a disabled plan leaves results bit-identical to a fault-free build.
  FaultPlan faults;

  /// Rejects nonsensical option combinations (negative noise, cluster
  /// load outside [0,1], non-positive loop cap, malformed fault plans)
  /// with InvalidArgument instead of silently simulating nonsense.
  /// Run by ClusterSimulator::Execute on use — callers never need
  /// ad-hoc checks of their own.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  SimOptions& WithAdaptation(bool enabled) {
    enable_adaptation = enabled;
    return *this;
  }
  SimOptions& WithDynamicRecompilation(bool enabled) {
    enable_dynamic_recompilation = enabled;
    return *this;
  }
  SimOptions& WithOptimizer(OptimizerOptions opts) {
    optimizer = std::move(opts);
    return *this;
  }
  SimOptions& WithNoise(double fraction) {
    noise = fraction;
    return *this;
  }
  SimOptions& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  SimOptions& WithIoContention(double multiplier) {
    io_contention = multiplier;
    return *this;
  }
  SimOptions& WithClusterLoad(double load) {
    cluster_load = load;
    return *this;
  }
  SimOptions& WithLoadChange(double at_seconds, double new_load) {
    load_change_at_seconds = at_seconds;
    new_cluster_load = new_load;
    return *this;
  }
  SimOptions& WithFaults(FaultPlan plan) {
    faults = std::move(plan);
    return *this;
  }
};

/// Typed timeline event kinds: what happened during a simulated run,
/// queryable without parsing free-form strings.
enum class SimEventKind {
  kInfo = 0,           // informational, no typed payload
  kAmStart,            // AM container obtained at t=0
  kLoadChange,         // cluster utilization changed
  kDynamicRecompile,   // block IR rebuilt with discovered sizes
  kSizeDiscovered,     // a variable's characteristics became known
  kReturnSizeDerived,  // UDF return size derived from argument sizes
  kTaskRetries,        // transient task failures retried in an MR job
  kStraggler,          // straggling wave (maybe speculatively re-run)
  kPreemption,         // co-tenant preemption window started
  kNodeCrash,          // worker node lost
  kNodeRecovered,      // worker node recommissioned
  kTaskRerun,          // map work re-executed after node loss
  kAmRestart,          // application master restarted
  kReoptimization,     // runtime re-optimization consulted the optimizer
  kMigration,          // AM migrated to a new container
  kLocalAdoption,      // kept the container, adopted local MR config
};

const char* SimEventKindName(SimEventKind kind);

/// Timeline entry for debugging and experiment reporting. The typed
/// fields (kind, node, tasks, config) carry the machine-readable
/// payload; `what` remains the human-readable rendering.
struct SimEvent {
  SimEventKind kind = SimEventKind::kInfo;
  double at_seconds = 0.0;
  /// Worker node involved (-1 when not node-related).
  int node = -1;
  /// Number of tasks/containers involved (0 when not applicable).
  int tasks = 0;
  /// Resource configuration adopted by the event, when it changes one.
  std::string config;
  std::string what;
};

/// Result of one simulated program execution.
struct SimResult {
  double elapsed_seconds = 0.0;
  int migrations = 0;
  int dynamic_recompiles = 0;
  int reoptimizations = 0;
  int mr_jobs_executed = 0;
  int64_t bufferpool_evictions = 0;

  /// ---- failure-recovery accounting (fault injection) ----
  /// Task attempts relaunched after transient failures or node loss.
  int task_retries = 0;
  /// Speculative task copies launched against stragglers.
  int speculative_launches = 0;
  /// Node crashes the run absorbed (lost work re-run, capacity degraded).
  int node_failures_survived = 0;
  /// Co-tenant preemption events applied to the run.
  int preemptions = 0;
  /// Application-master restarts (planned crash or AM-node loss).
  int am_restarts = 0;

  ResourceConfig final_config;
  std::vector<SimEvent> events;
};

/// Discrete "measured" execution of a compiled ML program on the
/// simulated YARN/MapReduce cluster. Shares its first-order performance
/// physics with the analytic cost model but additionally models the
/// second-order effects the optimizer cannot see: buffer-pool evictions,
/// task-memory trashing, IO contention, and — crucially — unknown
/// intermediate sizes that only resolve during execution and feed dynamic
/// recompilation and runtime resource adaptation (AM migration).
///
/// Execution mutates `program` (rebuilds its IR with discovered sizes);
/// callers that want a pristine program afterwards should pass a Clone().
class ClusterSimulator {
 public:
  ClusterSimulator(const ClusterConfig& cc, const SimOptions& opts);

  /// Runs `program` under the initial resource configuration.
  /// `oracle` supplies the true characteristics of data-dependent
  /// results (e.g. the table() indicator matrix), keyed by variable
  /// name; sizes derivable from inputs (UDF outputs) are discovered
  /// automatically via dynamic recompilation.
  Result<SimResult> Execute(MlProgram* program,
                            const ResourceConfig& initial,
                            const SymbolMap& oracle = {});

 private:
  class Run;
  ClusterConfig cc_;
  SimOptions opts_;
};

}  // namespace relm

#endif  // RELM_MRSIM_CLUSTER_SIMULATOR_H_

#include "mrsim/cluster_simulator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/retry.h"
#include "common/string_util.h"
#include "cost/cost_model.h"
#include "exec/op_registry.h"
#include "lops/compiler_backend.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "yarn/resource_manager.h"

namespace relm {

const char* SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kInfo:
      return "sim.info";
    case SimEventKind::kAmStart:
      return "sim.am_start";
    case SimEventKind::kLoadChange:
      return "sim.load_change";
    case SimEventKind::kDynamicRecompile:
      return "sim.dynamic_recompile";
    case SimEventKind::kSizeDiscovered:
      return "sim.size_discovered";
    case SimEventKind::kReturnSizeDerived:
      return "sim.return_size_derived";
    case SimEventKind::kTaskRetries:
      return "sim.task_retries";
    case SimEventKind::kStraggler:
      return "sim.straggler";
    case SimEventKind::kPreemption:
      return "sim.preemption";
    case SimEventKind::kNodeCrash:
      return "sim.node_crash";
    case SimEventKind::kNodeRecovered:
      return "sim.node_recovered";
    case SimEventKind::kTaskRerun:
      return "sim.task_rerun";
    case SimEventKind::kAmRestart:
      return "sim.am_restart";
    case SimEventKind::kReoptimization:
      return "sim.reoptimization";
    case SimEventKind::kMigration:
      return "sim.migration";
    case SimEventKind::kLocalAdoption:
      return "sim.local_adoption";
  }
  return "sim.unknown";
}

Status SimOptions::Validate() const {
  if (noise < 0.0 || noise >= 1.0) {
    return Status::InvalidArgument("noise must be in [0,1)");
  }
  if (cluster_load < 0.0 || cluster_load > 1.0) {
    return Status::InvalidArgument("cluster_load must be in [0,1]");
  }
  if (load_change_at_seconds >= 0.0 &&
      (new_cluster_load < 0.0 || new_cluster_load > 1.0)) {
    return Status::InvalidArgument("new_cluster_load must be in [0,1]");
  }
  if (max_loop_iterations <= 0) {
    return Status::InvalidArgument("max_loop_iterations must be positive");
  }
  if (io_contention <= 0.0) {
    return Status::InvalidArgument("io_contention must be positive");
  }
  return faults.Validate();
}

namespace {
/// Scheduling priority of the application-master container; co-tenant
/// filler containers are granted below the default so AM recovery can
/// preempt them.
constexpr int kAmPriority = 100;
constexpr int kTenantPriority = -1;
}  // namespace

/// One simulated execution; holds all mutable run state.
class ClusterSimulator::Run {
 public:
  Run(const ClusterConfig& cc, const SimOptions& opts, MlProgram* program,
      const ResourceConfig& initial, const SymbolMap& oracle)
      : cc_(cc),
        opts_(opts),
        program_(program),
        config_(initial),
        oracle_(oracle),
        pool_(initial.CpBudget()),
        rng_(opts.seed),
        injector_(opts.faults, opts.seed),
        rm_(cc) {
    cc_.mr_slot_availability =
        1.0 - std::clamp(opts.cluster_load, 0.0, 0.99);
  }

  Result<SimResult> Execute() {
    RELM_TRACE_SPAN("sim.execute");
    if (injector_.enabled()) {
      // Obtain the AM container so node loss and preemption act against
      // real capacity accounting. Best effort: a full cluster does not
      // block the run (the AM was running before the simulation's t=0).
      auto am = rm_.Allocate(cc_.ContainerRequestForHeap(config_.cp_heap),
                             kAmPriority);
      if (am.ok()) {
        am_container_ = *am;
        Log(SimEventKind::kAmStart,
            "AM container on node " + std::to_string(am_container_.node),
            am_container_.node);
      }
    }
    result_.final_config = config_;
    for (auto& blk : program_->blocks().main) {
      RELM_RETURN_IF_ERROR(ExecuteBlock(blk.get(), 0));
    }
    result_.elapsed_seconds = elapsed_;
    result_.final_config = config_;
    result_.bufferpool_evictions = pool_.evictions();
    RELM_COUNTER_ADD("sim.bufferpool_evictions",
                     result_.bufferpool_evictions);
    RELM_COUNTER_INC("sim.runs");
    RELM_HISTOGRAM_OBSERVE("sim.elapsed_seconds", elapsed_);
    RELM_TRACE_SIM_SPAN("sim.program", 0.0, elapsed_,
                        "\"config\":" +
                            obs::JsonQuote(config_.ToString()));
    return result_;
  }

 private:
  /// Captured user-function invocation: everything needed to execute it
  /// and derive output sizes without holding hop pointers.
  struct PendingCall {
    std::string fn;
    std::vector<MatrixCharacteristics> arg_mcs;  // per matrix param slot
    std::vector<std::pair<int, std::string>> outputs;  // index, caller var
  };

  /// Appends one typed timeline event and mirrors it onto the
  /// simulated-time trace track as an instant event.
  void Log(SimEventKind kind, const std::string& what, int node = -1,
           int tasks = 0, std::string config = {}) {
    RELM_TRACE_SIM_INSTANT(
        SimEventKindName(kind), elapsed_,
        "\"what\":" + obs::JsonQuote(what) +
            (node >= 0 ? ",\"node\":" + std::to_string(node) : "") +
            (tasks > 0 ? ",\"tasks\":" + std::to_string(tasks) : "") +
            (config.empty() ? ""
                            : ",\"config\":" + obs::JsonQuote(config)));
    result_.events.push_back(
        SimEvent{kind, elapsed_, node, tasks, std::move(config), what});
  }

  void Charge(double seconds) { elapsed_ += std::max(0.0, seconds); }

  double ComputeRate() const {
    return cc_.peak_gflops * 1e9 * exec::kComputeEfficiency *
           config_.CpComputeSpeedup();
  }

  double ReadBps() const { return exec::kCpReadBps / opts_.io_contention; }
  double WriteBps() const { return exec::kCpWriteBps / opts_.io_contention; }

  // ---------------- block walking ----------------

  Status ExecuteBlock(StatementBlock* blk, int depth) {
    if (depth > 64) {
      return Status::RuntimeError("simulated call depth exceeded");
    }
    switch (blk->kind()) {
      case BlockKind::kGeneric:
        return ExecuteGeneric(blk, depth);
      case BlockKind::kIf: {
        RELM_RETURN_IF_ERROR(ChargeBlockInstrs(blk, depth));
        const BlockIR& ir = program_->ir(blk->id());
        // Known predicate: take that branch; unknown: take the then
        // branch (the convergence-style scripts put the accept-path
        // there), falling back to else when then is empty.
        bool take_then = ir.taken_branch != 1 && !blk->body.empty();
        auto& branch = take_then ? blk->body : blk->else_body;
        for (auto& child : branch) {
          RELM_RETURN_IF_ERROR(ExecuteBlock(child.get(), depth));
        }
        return Status::OK();
      }
      case BlockKind::kWhile:
      case BlockKind::kFor: {
        const BlockIR& ir = program_->ir(blk->id());
        int64_t iters = static_cast<int64_t>(
            std::llround(std::max(1.0, ir.estimated_iterations)));
        iters = std::min(iters, opts_.max_loop_iterations);
        for (int64_t i = 0; i < iters; ++i) {
          RELM_RETURN_IF_ERROR(ChargeBlockInstrs(blk, depth));
          for (auto& child : blk->body) {
            RELM_RETURN_IF_ERROR(ExecuteBlock(child.get(), depth));
          }
        }
        // Final (failing) predicate evaluation.
        RELM_RETURN_IF_ERROR(ChargeBlockInstrs(blk, depth));
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Status ExecuteGeneric(StatementBlock* blk, int depth) {
    // Deliver timed faults that came due during CP-only phases (node
    // crashes between MR jobs, scheduled AM crash, lease expiries).
    if (injector_.enabled()) {
      RELM_ASSIGN_OR_RETURN(double fault_time,
                            ProcessTimedFaults(elapsed_));
      Charge(fault_time);
    }
    // Cluster-utilization change (Section 6 extension): apply the new
    // load and schedule a utilization-triggered re-optimization.
    if (opts_.load_change_at_seconds >= 0 && !load_changed_ &&
        elapsed_ >= opts_.load_change_at_seconds) {
      load_changed_ = true;
      cc_.mr_slot_availability =
          1.0 - std::clamp(opts_.new_cluster_load, 0.0, 0.99);
      Log(SimEventKind::kLoadChange,
          "cluster load changed; slot availability now " +
              FormatDouble(cc_.mr_slot_availability, 2));
      if (opts_.enable_adaptation) pending_utilization_reopt_ = true;
    }
    // Metadata-only fixpoint: derive user-function output sizes reachable
    // from this block (known argument sizes -> rebuilt function bodies ->
    // known return sizes) BEFORE the block's plan is compiled and
    // charged, so dependent operators compile against known sizes.
    if (opts_.enable_dynamic_recompilation) {
      RELM_RETURN_IF_ERROR(DeriveCallSizesFixpoint(blk));
    }
    // Dynamic recompilation: when this block still has unknowns and new
    // sizes became known, rebuild the IR before compiling its plan.
    bool recompiled = rebuilt_for_block_ == blk->id();
    if (opts_.enable_dynamic_recompilation &&
        program_->ir(blk->id()).has_unknown_dims &&
        knowns_version_ > rebuilt_version_) {
      RELM_RETURN_IF_ERROR(program_->Rebuild(known_overrides_));
      rebuilt_version_ = knowns_version_;
      ++result_.dynamic_recompiles;
      RELM_COUNTER_INC("sim.dynamic_recompiles");
      recompiled = true;
      Log(SimEventKind::kDynamicRecompile,
          "dynamic recompile at block " + std::to_string(blk->id()));
    }
    std::vector<PendingCall> calls;
    {
      RELM_ASSIGN_OR_RETURN(RuntimeBlock rb, CompilePlan(blk));
      // Runtime resource adaptation (Section 4): triggered when dynamic
      // recompilation still produced MR jobs, or when the cluster
      // utilization changed (Section 6 extension).
      bool unknown_trigger = opts_.enable_adaptation && recompiled &&
                             rb.NumMrJobs() > 0 &&
                             knowns_version_ > reopt_version_;
      bool utilization_trigger =
          pending_utilization_reopt_ && rb.NumMrJobs() > 0;
      // AM recovery consults the optimizer again before the next block
      // that schedules MR jobs (restart + re-optimization/migration).
      bool recovery_trigger =
          pending_recovery_reopt_ && rb.NumMrJobs() > 0;
      if (unknown_trigger || utilization_trigger || recovery_trigger) {
        RELM_RETURN_IF_ERROR(ReoptimizeAndMaybeMigrate(blk));
        reopt_version_ = knowns_version_;
        pending_utilization_reopt_ = false;
        pending_recovery_reopt_ = false;
        RELM_ASSIGN_OR_RETURN(rb, CompilePlan(blk));
      }
      RELM_RETURN_IF_ERROR(ChargeInstrs(rb, blk, &calls));
    }
    // Execute user-function bodies after the block plan is dropped (size
    // derivation above already rebuilt; bodies compile to known sizes).
    for (const PendingCall& call : calls) {
      RELM_RETURN_IF_ERROR(ExecuteCallBody(call, depth));
    }
    DiscoverSizes(blk);
    return Status::OK();
  }

  /// Collects the block's function calls without charging time.
  Result<std::vector<PendingCall>> CollectCalls(StatementBlock* blk) {
    std::vector<PendingCall> calls;
    const BlockIR& ir = program_->ir(blk->id());
    for (Hop* h : ir.dag.TopoOrder()) {
      if (h->kind() != HopKind::kFunctionCall) continue;
      calls.push_back(CaptureCall(*h, ir));
    }
    return calls;
  }

  PendingCall CaptureCall(const Hop& hop, const BlockIR& ir) {
    PendingCall call;
    call.fn = hop.function_name;
    for (const auto& in : hop.inputs()) {
      call.arg_mcs.push_back(in->is_matrix()
                                 ? in->mc()
                                 : MatrixCharacteristics(1, 1, 1));
    }
    for (Hop* h : ir.dag.TopoOrder()) {
      if (h->kind() != HopKind::kTransientWrite) continue;
      Hop* in = h->input(0);
      if (in->kind() == HopKind::kFunctionOutput &&
          in->input(0) == &hop) {
        call.outputs.emplace_back(in->function_output_index, h->name());
      }
    }
    return call;
  }

  Status DeriveCallSizesFixpoint(StatementBlock* blk) {
    for (int round = 0; round < 8; ++round) {
      if (knowns_version_ > rebuilt_version_) {
        RELM_RETURN_IF_ERROR(program_->Rebuild(known_overrides_));
        rebuilt_version_ = knowns_version_;
        ++result_.dynamic_recompiles;
        RELM_COUNTER_INC("sim.dynamic_recompiles");
        rebuilt_for_block_ = blk->id();
      }
      RELM_ASSIGN_OR_RETURN(std::vector<PendingCall> calls,
                            CollectCalls(blk));
      bool changed = false;
      for (const PendingCall& call : calls) {
        RELM_ASSIGN_OR_RETURN(bool c, DeriveForCall(call));
        changed |= c;
      }
      if (!changed) break;
    }
    return Status::OK();
  }

  /// Registers parameter-size overrides and derives caller-variable
  /// sizes for one call; returns true when anything new became known.
  /// Purely metadata work — no execution time is charged.
  Result<bool> DeriveForCall(const PendingCall& call) {
    const auto& functions = program_->ast().functions;
    auto fit = functions.find(call.fn);
    if (fit == functions.end()) return false;
    const FunctionDef& fn = fit->second;
    bool new_knowns = false;
    for (size_t i = 0; i < fn.params.size() && i < call.arg_mcs.size();
         ++i) {
      if (fn.params[i].data_type != DataType::kMatrix) continue;
      const MatrixCharacteristics& arg_mc = call.arg_mcs[i];
      if (!arg_mc.dims_known()) continue;
      std::string key = call.fn + "/" + fn.params[i].name;
      auto existing = known_overrides_.find(key);
      if (existing != known_overrides_.end() &&
          existing->second.mc.rows() == arg_mc.rows() &&
          existing->second.mc.cols() == arg_mc.cols()) {
        continue;
      }
      SymbolInfo info;
      info.dtype = DataType::kMatrix;
      info.mc = arg_mc;
      known_overrides_[key] = info;
      new_knowns = true;
    }
    if (new_knowns) {
      RELM_RETURN_IF_ERROR(program_->Rebuild(known_overrides_));
      ++knowns_version_;
      rebuilt_version_ = knowns_version_;
    }
    // Derive return sizes from the (possibly rebuilt) body IR and
    // register them under the qualified key "<function>><return>" so the
    // builder resolves FunctionOutput hops directly (works even when the
    // output is consumed within the calling block and never written).
    bool derived = false;
    auto bit = program_->blocks().functions.find(call.fn);
    if (bit != program_->blocks().functions.end()) {
      for (const FunctionParam& ret : fn.returns) {
        if (ret.data_type != DataType::kMatrix) continue;
        std::string key = call.fn + ">" + ret.name;
        if (known_overrides_.count(key)) continue;
        MatrixCharacteristics ret_mc = FindReturnMc(bit->second, ret.name);
        if (!ret_mc.dims_known()) continue;
        SymbolInfo info;
        info.dtype = DataType::kMatrix;
        info.mc = ret_mc;
        known_overrides_[key] = info;
        derived = true;
        Log(SimEventKind::kReturnSizeDerived,
            "derived return size of " + call.fn + "::" + ret.name +
                ": " + ret_mc.ToString());
      }
    }
    if (derived) ++knowns_version_;
    return new_knowns || derived;
  }

  /// Charges the execution of a user-function body (sizes were already
  /// derived by the metadata fixpoint, so the body compiles against
  /// known argument sizes).
  Status ExecuteCallBody(const PendingCall& call, int depth) {
    if (in_function_.count(call.fn)) return Status::OK();  // recursion
    in_function_.insert(call.fn);
    Status st = Status::OK();
    auto bit = program_->blocks().functions.find(call.fn);
    if (bit != program_->blocks().functions.end()) {
      for (auto& fb : bit->second) {
        st = ExecuteBlock(fb.get(), depth + 1);
        if (!st.ok()) break;
      }
    }
    in_function_.erase(call.fn);
    return st;
  }

  Result<RuntimeBlock> CompilePlan(StatementBlock* blk) {
    return CompileBlockPlan(program_, cc_, blk, config_, &counters_);
  }

  /// Charges the predicate instructions of a control block (cheap).
  Status ChargeBlockInstrs(StatementBlock* blk, int depth) {
    std::vector<PendingCall> calls;
    {
      RELM_ASSIGN_OR_RETURN(RuntimeBlock rb, CompilePlan(blk));
      rb.body.clear();
      rb.else_body.clear();
      RELM_RETURN_IF_ERROR(ChargeInstrs(rb, blk, &calls));
    }
    for (const PendingCall& call : calls) {
      RELM_ASSIGN_OR_RETURN(bool derived, DeriveForCall(call));
      (void)derived;
      RELM_RETURN_IF_ERROR(ExecuteCallBody(call, depth));
    }
    return Status::OK();
  }

  // ---------------- size discovery ----------------

  /// Records newly known characteristics after executing a block: oracle
  /// truths for data-dependent results, plus sizes derivable through
  /// user-function bodies once their parameters are known.
  void DiscoverSizes(StatementBlock* blk) {
    const BlockIR& ir = program_->ir(blk->id());
    for (Hop* h : ir.dag.TopoOrder()) {
      if (h->kind() == HopKind::kTransientWrite && h->is_matrix() &&
          !h->mc().dims_known()) {
        auto oit = oracle_.find(h->name());
        if (oit != oracle_.end() &&
            !known_overrides_.count(h->name())) {
          known_overrides_[h->name()] = oit->second;
          ++knowns_version_;
          Log(SimEventKind::kSizeDiscovered,
              "size of '" + h->name() + "' became known: " +
                  oit->second.mc.ToString());
        }
      }
    }
  }

  /// Characteristics of the last known-size write of `name` in a block
  /// list (recursively; later writes win).
  MatrixCharacteristics FindReturnMc(const std::vector<BlockPtr>& blocks,
                                     const std::string& name) {
    MatrixCharacteristics out = MatrixCharacteristics::Unknown();
    for (const auto& blk : blocks) {
      if (program_->has_ir(blk->id())) {
        for (Hop* h : program_->ir(blk->id()).dag.TopoOrder()) {
          if (h->kind() == HopKind::kTransientWrite &&
              h->name() == name && h->mc().dims_known()) {
            out = h->mc();
          }
        }
      }
      MatrixCharacteristics nested = FindReturnMc(blk->body, name);
      if (nested.dims_known()) out = nested;
      nested = FindReturnMc(blk->else_body, name);
      if (nested.dims_known()) out = nested;
    }
    return out;
  }

  // ---------------- instruction charging ----------------

  Status ChargeInstrs(const RuntimeBlock& rb, StatementBlock* blk,
                      std::vector<PendingCall>* pending_calls) {
    double block_time = 0.0;
    std::unordered_set<const Hop*> loaded;
    for (const auto& instr : rb.instrs) {
      if (instr.kind == RuntimeInstr::Kind::kCp) {
        RELM_ASSIGN_OR_RETURN(
            double t, ChargeCp(*instr.hop, rb, pending_calls, &loaded));
        block_time += t;
      } else {
        RELM_ASSIGN_OR_RETURN(double t,
                              ChargeJob(instr.job, blk, block_time));
        block_time += t;
      }
    }
    if (opts_.noise > 0) block_time *= rng_.Noise(opts_.noise);
    RELM_TRACE_SIM_SPAN("sim.block", elapsed_, block_time,
                        "\"block\":" + std::to_string(blk->id()) +
                            ",\"mr_jobs\":" +
                            std::to_string(rb.NumMrJobs()));
    Charge(block_time);
    return Status::OK();
  }

  Result<double> ChargeCp(const Hop& hop, const RuntimeBlock& rb,
                          std::vector<PendingCall>* pending_calls,
                          std::unordered_set<const Hop*>* loaded) {
    double time = 0.0;
    for (const auto& raw : hop.inputs()) {
      const Hop* in = raw.get();
      while (in->fused() && !in->inputs().empty()) in = in->input(0);
      time += ChargeRead(*in, loaded);
    }
    time += hop.ComputeFlops() / ComputeRate();
    switch (hop.kind()) {
      case HopKind::kTransientWrite: {
        const Hop* in = hop.input(0);
        bool from_mr =
            in->exec_type() == ExecType::kMR && in->is_matrix() &&
            in->kind() != HopKind::kTransientRead &&
            in->kind() != HopKind::kPersistentRead &&
            in->kind() != HopKind::kLiteral;
        var_disk_bytes_[hop.name()] = HopDiskBytes(hop);
        if (hop.is_matrix()) {
          if (from_mr) {
            pool_.Remove(hop.name());
          } else if (in->kind() == HopKind::kPersistentRead) {
            // `X = read(...)`: the variable aliases the cached file
            // object; move the accounting instead of duplicating it.
            pool_.Remove("::file:" + in->name());
            time += PoolPut(hop.name(), HopMemBytes(hop),
                            /*dirty=*/false);
          } else {
            time += PoolPut(hop.name(), HopMemBytes(hop), /*dirty=*/true);
          }
        }
        break;
      }
      case HopKind::kPersistentWrite: {
        const Hop* in = hop.input(0);
        bool from_mr = in->exec_type() == ExecType::kMR &&
                       in->is_matrix() &&
                       in->kind() != HopKind::kTransientRead;
        if (!from_mr) {
          time += static_cast<double>(HopDiskBytes(hop)) / WriteBps();
        }
        break;
      }
      case HopKind::kFunctionCall: {
        // Capture everything now (hop pointers may be invalidated by
        // rebuilds before the call is processed).
        PendingCall call;
        call.fn = hop.function_name;
        for (const auto& in : hop.inputs()) {
          call.arg_mcs.push_back(in->is_matrix()
                                     ? in->mc()
                                     : MatrixCharacteristics(1, 1, 1));
        }
        // Map output indices to the caller variables they define.
        if (rb.ir != nullptr) {
          for (Hop* h : rb.ir->dag.TopoOrder()) {
            if (h->kind() != HopKind::kTransientWrite) continue;
            Hop* in = h->input(0);
            if (in->kind() == HopKind::kFunctionOutput &&
                in->input(0) == &hop) {
              call.outputs.emplace_back(in->function_output_index,
                                        h->name());
            }
          }
        }
        pending_calls->push_back(std::move(call));
        break;
      }
      default:
        break;
    }
    return time;
  }

  double ChargeRead(const Hop& in,
                    std::unordered_set<const Hop*>* loaded) {
    switch (in.kind()) {
      case HopKind::kTransientRead: {
        if (!in.is_matrix()) return 0.0;
        if (pool_.Touch(in.name())) return 0.0;
        int64_t disk = var_disk_bytes_.count(in.name())
                           ? var_disk_bytes_[in.name()]
                           : HopDiskBytes(in);
        double t = static_cast<double>(disk) / ReadBps();
        t += PoolPut(in.name(), HopMemBytes(in), /*dirty=*/false);
        return t;
      }
      case HopKind::kPersistentRead: {
        std::string key = "::file:" + in.name();
        if (pool_.Touch(key)) return 0.0;
        double t = static_cast<double>(HopDiskBytes(in)) / ReadBps();
        t += PoolPut(key, HopMemBytes(in), /*dirty=*/false);
        return t;
      }
      default: {
        if (in.exec_type() == ExecType::kMR && in.is_matrix() &&
            in.kind() != HopKind::kLiteral && !loaded->count(&in)) {
          loaded->insert(&in);
          return static_cast<double>(HopDiskBytes(in)) / ReadBps();
        }
        return 0.0;
      }
    }
  }

  /// Inserts into the buffer pool, charging the export of evicted dirty
  /// entries; returns the charged time.
  double PoolPut(const std::string& name, int64_t bytes, bool dirty) {
    double time = 0.0;
    for (const auto& ev : pool_.Put(name, bytes, dirty)) {
      if (ev.dirty) {
        int64_t disk = var_disk_bytes_.count(ev.name)
                           ? var_disk_bytes_[ev.name]
                           : ev.bytes;
        time += static_cast<double>(disk) / WriteBps();
      }
    }
    return time;
  }

  /// Charges one MR job. `block_offset` is the time already accumulated
  /// for the enclosing block (elapsed_ lags until the block is charged);
  /// the fault path uses it to place the job's execution window.
  Result<double> ChargeJob(const MRJobInstr& job, StatementBlock* blk,
                           double block_offset) {
    double time = 0.0;
    for (const auto& [name, bytes] : job.exported_inputs) {
      if (name.rfind("#tmp", 0) == 0) {
        time += static_cast<double>(bytes) / WriteBps();
        continue;
      }
      if (pool_.Contains(name)) {
        time += static_cast<double>(bytes) / WriteBps();
        pool_.MarkClean(name);
      }
    }
    if (!injector_.enabled()) {
      MrJobTimeBreakdown breakdown = EstimateMrJobTime(
          cc_, job, config_.MrHeapForBlock(blk->id()),
          /*model_trashing=*/true);
      double job_time = breakdown.total * opts_.io_contention;
      RELM_TRACE_SIM_SPAN(
          "sim.mr_job", elapsed_ + block_offset + time, job_time,
          "\"block\":" + std::to_string(blk->id()) +
              ",\"map_tasks\":" + std::to_string(breakdown.num_map_tasks));
      time += job_time;
      ++result_.mr_jobs_executed;
      RELM_COUNTER_INC("sim.mr_jobs_executed");
      return time;
    }
    RELM_ASSIGN_OR_RETURN(
        double job_time, FaultyJobTime(job, blk, block_offset + time));
    return time + job_time;
  }

  // ---------------- fault injection & recovery ----------------

  /// Cluster view for MR job estimates under the current degradation:
  /// crashed nodes are gone and co-tenant preemption shrinks the slot
  /// availability.
  ClusterConfig DegradedCluster() const {
    ClusterConfig ecc = cc_;
    ecc.num_worker_nodes = std::max(1, rm_.NumAvailableNodes());
    double preempted = injector_.PreemptedFraction(elapsed_);
    if (preempted > 0.0) {
      ecc.mr_slot_availability =
          std::max(0.05, cc_.mr_slot_availability * (1.0 - preempted));
    }
    return ecc;
  }

  /// Runs one MR job under the fault plan: transient task retries with
  /// capped attempts and exponential backoff, straggler slowdowns with
  /// speculative re-execution, and node/AM crashes landing inside the
  /// job's execution window (lost work re-runs on the surviving nodes).
  Result<double> FaultyJobTime(const MRJobInstr& job, StatementBlock* blk,
                               double start_offset) {
    RELM_ASSIGN_OR_RETURN(double fault_time,
                          ProcessTimedFaults(elapsed_ + start_offset));
    ClusterConfig ecc = DegradedCluster();
    MrJobTimeBreakdown bd = EstimateMrJobTime(
        ecc, job, config_.MrHeapForBlock(blk->id()),
        /*model_trashing=*/true);
    double base = bd.total * opts_.io_contention;
    double extra = fault_time;
    const FaultPlan& plan = injector_.plan();
    int slots = std::max(
        1, (bd.num_map_tasks + bd.map_waves - 1) /
               std::max(1, bd.map_waves));
    double per_task =
        std::max(0.0, bd.map_phase / std::max(1, bd.map_waves) -
                          ecc.mr_task_latency) *
        opts_.io_contention;

    // Transient task failures: each attempt draws independently; the
    // attempt cap mirrors mapreduce.map.maxattempts, and retry k backs
    // off 2^(k-1) times the base delay before relaunching.
    if (plan.transient_task_failure_rate > 0.0) {
      int retries = 0;
      double max_backoff = 0.0;
      for (int t = 0; t < bd.num_map_tasks; ++t) {
        int attempt = 1;
        while (injector_.DrawTaskFailure()) {
          if (attempt >= plan.max_task_attempts) {
            return Status::RuntimeError(
                "map task failed " + std::to_string(attempt) +
                " attempts (transient failure rate " +
                FormatDouble(plan.transient_task_failure_rate, 2) +
                "); job aborted");
          }
          max_backoff = std::max(
              max_backoff,
              ExponentialBackoffSeconds(plan.retry_backoff_seconds, attempt));
          ++retries;
          ++attempt;
        }
      }
      if (retries > 0) {
        result_.task_retries += retries;
        RELM_COUNTER_ADD("sim.task_retries", retries);
        int extra_waves = (retries + slots - 1) / slots;
        extra += extra_waves * (ecc.mr_task_latency + per_task) +
                 max_backoff;
        Log(SimEventKind::kTaskRetries,
            "transient task failures: " + std::to_string(retries) +
                " retries",
            /*node=*/-1, /*tasks=*/retries);
      }
    }

    // Stragglers: a hit wave runs `straggler_slowdown` times slower;
    // past the speculation threshold a backup copy races the straggler
    // and the wave finishes with whichever attempt completes first.
    if (plan.straggler_probability > 0.0 && per_task > 0.0) {
      for (int w = 0; w < bd.map_waves; ++w) {
        if (!injector_.DrawStraggler()) continue;
        double slow = plan.straggler_slowdown;
        if (slow >= plan.speculation_threshold) {
          ++result_.speculative_launches;
          RELM_COUNTER_INC("sim.speculative_launches");
          double straggler_end = per_task * slow;
          double copy_end = 2.0 * per_task + ecc.mr_task_latency;
          extra += std::max(
              0.0, std::min(straggler_end, copy_end) - per_task);
          Log(SimEventKind::kStraggler,
              "straggler (" + FormatDouble(slow, 1) +
                  "x); speculative copy launched",
              /*node=*/-1, /*tasks=*/1);
        } else {
          extra += (slow - 1.0) * per_task;
        }
      }
    }

    // Node and AM crashes landing inside this job's execution window.
    double window_end = elapsed_ + start_offset + base + extra;
    for (const NodeCrash& crash : injector_.TakeCrashesDue(window_end)) {
      RELM_ASSIGN_OR_RETURN(
          double rerun,
          HandleNodeCrash(crash, base, bd.num_map_tasks));
      extra += rerun;
    }
    if (injector_.TakeAmCrashDue(window_end)) {
      extra += HandleAmRestart("scheduled AM crash");
    }
    ++result_.mr_jobs_executed;
    RELM_COUNTER_INC("sim.mr_jobs_executed");
    RELM_TRACE_SIM_SPAN(
        "sim.mr_job", elapsed_ + start_offset, base + extra,
        "\"block\":" + std::to_string(blk->id()) +
            ",\"map_tasks\":" + std::to_string(bd.num_map_tasks) +
            ",\"faulty\":true");
    return base + extra;
  }

  /// Delivers timed faults due by `now` outside of any MR job: node
  /// recoveries, co-tenant preemption windows (start and expiry), node
  /// crashes (no in-flight tasks to lose), and the scheduled AM crash.
  /// Returns the recovery time to charge.
  Result<double> ProcessTimedFaults(double now) {
    double extra = 0.0;
    for (int node : injector_.TakeRecoveriesDue(now)) {
      if (rm_.RecommissionNode(node).ok()) {
        Log(SimEventKind::kNodeRecovered,
            "node " + std::to_string(node) + " recommissioned", node);
      }
    }
    // Expired co-tenant leases give their capacity back.
    for (auto it = tenant_leases_.begin(); it != tenant_leases_.end();) {
      if (it->until <= now) {
        for (const Container& c : it->containers) rm_.Release(c);
        it = tenant_leases_.erase(it);
      } else {
        ++it;
      }
    }
    for (const PreemptionEvent& ev : injector_.TakePreemptionsDue(now)) {
      ++result_.preemptions;
      RELM_COUNTER_INC("sim.preemptions");
      // The co-tenant's reclaimed share occupies real capacity at low
      // priority, so AM recovery has to preempt it to place containers.
      TenantLease lease;
      lease.until = ev.at_seconds + ev.duration_seconds;
      int64_t grab = static_cast<int64_t>(
          ev.slot_fraction * static_cast<double>(cc_.memory_per_node));
      grab = std::min(grab, cc_.max_allocation);
      for (int n = 0; n < cc_.num_worker_nodes && grab > 0; ++n) {
        auto c = rm_.Allocate(grab, kTenantPriority);
        if (c.ok()) lease.containers.push_back(*c);
      }
      int grabbed = static_cast<int>(lease.containers.size());
      tenant_leases_.push_back(std::move(lease));
      Log(SimEventKind::kPreemption,
          "co-tenant preemption: " +
              FormatDouble(ev.slot_fraction * 100.0, 0) +
              "% of slots reclaimed for " +
              FormatDouble(ev.duration_seconds, 0) + "s",
          /*node=*/-1, /*tasks=*/grabbed);
    }
    for (const NodeCrash& crash : injector_.TakeCrashesDue(now)) {
      RELM_ASSIGN_OR_RETURN(
          double t, HandleNodeCrash(crash, /*job_base=*/0.0,
                                    /*num_map_tasks=*/0));
      extra += t;
    }
    if (injector_.TakeAmCrashDue(now)) {
      extra += HandleAmRestart("scheduled AM crash");
    }
    return extra;
  }

  /// Decommissions the crashed node and re-runs the work lost with it.
  /// `job_base > 0` means the crash landed inside a running MR job whose
  /// resident map work must be re-executed on the surviving nodes.
  Result<double> HandleNodeCrash(const NodeCrash& crash, double job_base,
                                 int num_map_tasks) {
    if (!rm_.NodeAvailable(crash.node)) return 0.0;  // already down
    int nodes_before = rm_.NumAvailableNodes();
    std::vector<Container> killed = rm_.DecommissionNode(crash.node);
    if (rm_.NumAvailableNodes() == 0) {
      return Status::ResourceError(
          "node " + std::to_string(crash.node) +
          " crashed and no worker nodes remain; cannot recover");
    }
    ++result_.node_failures_survived;
    RELM_COUNTER_INC("sim.node_failures_survived");
    Log(SimEventKind::kNodeCrash,
        "node " + std::to_string(crash.node) + " crashed (" +
            std::to_string(killed.size()) + " containers killed)",
        crash.node, static_cast<int>(killed.size()));
    double extra = 0.0;
    if (job_base > 0.0 && nodes_before > 0) {
      // Re-run the map work that was resident on the lost node: its
      // share of the job plus one task-wave relaunch latency.
      int lost_tasks =
          std::max(1, num_map_tasks / std::max(1, nodes_before));
      result_.task_retries += lost_tasks;
      RELM_COUNTER_ADD("sim.task_retries", lost_tasks);
      extra += job_base / static_cast<double>(nodes_before) +
               cc_.mr_task_latency;
      Log(SimEventKind::kTaskRerun,
          "re-running " + std::to_string(lost_tasks) +
              " tasks lost with node " + std::to_string(crash.node),
          crash.node, lost_tasks);
    }
    bool am_lost =
        am_container_.id >= 0 && am_container_.node == crash.node;
    if (am_lost) {
      extra += HandleAmRestart("AM container lost with node " +
                               std::to_string(crash.node));
    }
    RELM_TRACE_SIM_SPAN("sim.recovery", elapsed_, extra,
                        "\"node\":" + std::to_string(crash.node));
    return extra;
  }

  /// Restarts the application master after its container died: a new
  /// container is obtained (preempting lower-priority co-tenants if the
  /// degraded cluster is full), the in-memory state is gone (live
  /// variables re-read from HDFS on next access), and — with adaptation
  /// enabled — recovery routes through the re-optimization/migration
  /// path before the next MR-scheduling block.
  double HandleAmRestart(const std::string& why) {
    ++result_.am_restarts;
    RELM_COUNTER_INC("sim.am_restarts");
    RELM_TRACE_SIM_SPAN("sim.recovery", elapsed_,
                        cc_.container_alloc_latency,
                        "\"why\":" + obs::JsonQuote(why));
    Log(SimEventKind::kAmRestart,
        "AM failure: " + why + "; restarting application master");
    if (am_container_.id >= 0) {
      rm_.Release(am_container_);  // no-op if killed with its node
      am_container_ = Container{};
    }
    std::vector<Container> preempted;
    auto am = rm_.AllocateWithPreemption(
        cc_.ContainerRequestForHeap(config_.cp_heap), kAmPriority,
        &preempted);
    if (am.ok()) {
      am_container_ = *am;
      if (!preempted.empty()) {
        Log(SimEventKind::kInfo,
            "AM restart preempted " + std::to_string(preempted.size()) +
                " co-tenant container(s)",
            /*node=*/-1, static_cast<int>(preempted.size()));
      }
      Log(SimEventKind::kInfo,
          "AM restarted on node " + std::to_string(am_container_.node),
          am_container_.node);
    }
    // The buffer pool dies with the AM process; dirty state is
    // recovered from HDFS/lineage, charged as re-reads on next access.
    pool_.Clear();
    if (opts_.enable_adaptation) pending_recovery_reopt_ = true;
    return cc_.container_alloc_latency;
  }

  // ---------------- runtime resource adaptation ----------------

  Status ReoptimizeAndMaybeMigrate(StatementBlock* blk) {
    RELM_TRACE_SPAN("sim.reoptimize");
    ++result_.reoptimizations;
    RELM_COUNTER_INC("sim.reoptimizations");
    OptimizerStats stats;
    // A fresh optimizer sees the current cluster state (slot
    // availability may have changed since the run started; crashed
    // nodes and co-tenant preemption shrink the cluster it plans for).
    ResourceOptimizer optimizer(
        injector_.enabled() ? DegradedCluster() : cc_, opts_.optimizer);
    RELM_ASSIGN_OR_RETURN(
        ResourceOptimizer::ExtendedResult ext,
        optimizer.OptimizeExtended(program_, config_.cp_heap, &stats));
    RELM_TRACE_SIM_SPAN("sim.reoptimize", elapsed_, stats.opt_time_seconds,
                        "\"block\":" + std::to_string(blk->id()));
    Charge(stats.opt_time_seconds);  // optimization overhead is real time

    // Re-optimization scope: from the outermost enclosing loop (or the
    // current top-level block) to the end of the program.
    std::vector<StatementBlock*> scope = ReoptScope(blk);
    RELM_ASSIGN_OR_RETURN(double cost_local, ScopeCost(scope, ext.local));
    RELM_ASSIGN_OR_RETURN(double cost_global,
                          ScopeCost(scope, ext.global));
    double benefit = cost_local - cost_global;

    // Migration cost: export dirty live variables + new container.
    double migration_cost = cc_.container_alloc_latency;
    for (const auto& [name, bytes] : var_disk_bytes_) {
      if (pool_.Contains(name)) {
        migration_cost += static_cast<double>(bytes) / WriteBps();
      }
    }
    std::ostringstream os;
    os << "reopt: benefit=" << FormatDouble(benefit, 2)
       << "s migration=" << FormatDouble(migration_cost, 2) << "s";
    Log(SimEventKind::kReoptimization, os.str());

    if (ext.global.cp_heap != config_.cp_heap &&
        benefit > migration_cost) {
      // Migrate: materialize state, obtain a new container, resume.
      Charge(migration_cost);
      config_ = ext.global;
      pool_.Clear();
      pool_.SetCapacity(config_.CpBudget());
      ++result_.migrations;
      RELM_COUNTER_INC("sim.migrations");
      if (injector_.enabled() && am_container_.id >= 0) {
        // Move the AM's capacity booking to the new container size.
        rm_.Release(am_container_);
        auto am = rm_.AllocateWithPreemption(
            cc_.ContainerRequestForHeap(config_.cp_heap), kAmPriority);
        am_container_ = am.ok() ? *am : Container{};
      }
      Log(SimEventKind::kMigration, "AM migration to " + config_.ToString(),
          /*node=*/-1, /*tasks=*/0, config_.ToString());
    } else {
      // Keep the container; adopt the locally optimal MR configuration.
      config_.per_block_mr_heap = ext.local.per_block_mr_heap;
      config_.default_mr_heap = ext.local.default_mr_heap;
      Log(SimEventKind::kLocalAdoption,
          "no migration; adopting local MR config",
          /*node=*/-1, /*tasks=*/0, config_.ToString());
    }
    return Status::OK();
  }

  std::vector<StatementBlock*> ReoptScope(StatementBlock* blk) {
    // Find the top-level ancestor of blk, then take everything from it
    // to the end of the main block list.
    std::vector<StatementBlock*> scope;
    const auto& main = program_->blocks().main;
    size_t start = main.size();
    for (size_t i = 0; i < main.size(); ++i) {
      if (ContainsBlock(main[i].get(), blk)) {
        start = i;
        break;
      }
    }
    for (size_t i = start; i < main.size(); ++i) {
      scope.push_back(main[i].get());
    }
    return scope;
  }

  static bool ContainsBlock(StatementBlock* root, StatementBlock* target) {
    if (root == target) return true;
    for (const auto& c : root->body) {
      if (ContainsBlock(c.get(), target)) return true;
    }
    for (const auto& c : root->else_body) {
      if (ContainsBlock(c.get(), target)) return true;
    }
    return false;
  }

  Result<double> ScopeCost(const std::vector<StatementBlock*>& scope,
                           const ResourceConfig& cfg) {
    CostModel cm(cc_, opts_.optimizer.expected_failure_rate);
    double total = 0.0;
    for (StatementBlock* b : scope) {
      RELM_ASSIGN_OR_RETURN(
          RuntimeBlock rb,
          CompileBlockPlan(program_, cc_, b, cfg, &counters_));
      RuntimeProgram probe;
      probe.resources = cfg;
      total += cm.EstimateBlockCost(rb, probe);
    }
    return total;
  }

  /// Capacity held by a co-tenant preemption window until it expires.
  struct TenantLease {
    double until = 0.0;
    std::vector<Container> containers;
  };

  ClusterConfig cc_;
  SimOptions opts_;
  MlProgram* program_;
  ResourceConfig config_;
  SymbolMap oracle_;
  exec::MemoryManager pool_;
  Random rng_;
  FaultInjector injector_;
  ResourceManager rm_;
  Container am_container_;
  std::vector<TenantLease> tenant_leases_;
  bool pending_recovery_reopt_ = false;

  SimResult result_;
  double elapsed_ = 0.0;
  CompileCounters counters_;
  SymbolMap known_overrides_;
  int64_t knowns_version_ = 0;
  int64_t rebuilt_version_ = 0;
  int64_t reopt_version_ = 0;
  int rebuilt_for_block_ = -1;
  bool load_changed_ = false;
  bool pending_utilization_reopt_ = false;
  std::unordered_map<std::string, int64_t> var_disk_bytes_;
  std::unordered_set<std::string> in_function_;
};

ClusterSimulator::ClusterSimulator(const ClusterConfig& cc,
                                   const SimOptions& opts)
    : cc_(cc), opts_(opts) {}

Result<SimResult> ClusterSimulator::Execute(MlProgram* program,
                                            const ResourceConfig& initial,
                                            const SymbolMap& oracle) {
  RELM_RETURN_IF_ERROR(opts_.Validate());
  Run run(cc_, opts_, program, initial, oracle);
  return run.Execute();
}

}  // namespace relm

#ifndef RELM_MRSIM_THROUGHPUT_H_
#define RELM_MRSIM_THROUGHPUT_H_

#include <cstdint>

#include "yarn/cluster_config.h"

namespace relm {

/// Result of a multi-user throughput simulation (Section 5.3).
struct ThroughputResult {
  double total_seconds = 0.0;
  double apps_per_minute = 0.0;
  int max_concurrent = 0;
  int apps_completed = 0;
};

/// Simulates `num_users` concurrent users, each submitting
/// `apps_per_user` back-to-back applications whose AM containers request
/// `am_container_bytes`. The ResourceManager grants containers against
/// cluster capacity (queueing excess submissions); each running app needs
/// `solo_app_seconds` of work, slowed down by IO-bandwidth saturation as
/// concurrency grows: rate = 1 / (1 + alpha * (concurrent - 1)).
ThroughputResult SimulateThroughput(const ClusterConfig& cc,
                                    int64_t am_container_bytes,
                                    double solo_app_seconds, int num_users,
                                    int apps_per_user = 8,
                                    double io_saturation_alpha = 0.05);

}  // namespace relm

#endif  // RELM_MRSIM_THROUGHPUT_H_

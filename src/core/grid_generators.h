#ifndef RELM_CORE_GRID_GENERATORS_H_
#define RELM_CORE_GRID_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "hops/ml_program.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Grid point generation strategies for discretizing the continuous
/// memory search space (Section 3.3.2).
enum class GridType {
  kEquiSpaced,   // fixed-size gaps
  kExpSpaced,    // exponentially increasing gaps (logarithmic #points)
  kMemBased,     // derived from the program's operator memory estimates
  kHybrid,       // union of memory-based and exp-spaced (the default)
};

const char* GridTypeName(GridType type);

/// Generates ascending heap-size grid points within the cluster's
/// min/max allocation constraints. `m` is the number of base points for
/// the equi-spaced grid (and the bracketing resolution of the
/// memory-based grid). The memory-based and hybrid grids additionally
/// inspect `program`'s operator memory estimates; program may be null
/// for program-independent grids.
std::vector<int64_t> EnumGridPoints(const MlProgram* program,
                                    const ClusterConfig& cc, GridType type,
                                    int m);

/// All distinct operator memory estimates of the program (bytes),
/// translated to the heap sizes at which the operator would start to fit
/// (estimate / budget-fraction), unclamped.
std::vector<int64_t> CollectMemoryEstimateHeaps(const MlProgram& program);

}  // namespace relm

#endif  // RELM_CORE_GRID_GENERATORS_H_

#include "core/grid_generators.h"

#include <algorithm>
#include <set>

#include "matrix/matrix_characteristics.h"

namespace relm {

const char* GridTypeName(GridType type) {
  switch (type) {
    case GridType::kEquiSpaced:
      return "Equi";
    case GridType::kExpSpaced:
      return "Exp";
    case GridType::kMemBased:
      return "Mem";
    case GridType::kHybrid:
      return "Hybrid";
  }
  return "?";
}

namespace {

int64_t MinHeap(const ClusterConfig& cc) { return cc.MinHeapSize(); }
int64_t MaxHeap(const ClusterConfig& cc) { return cc.MaxHeapSize(); }

std::vector<int64_t> EquiPoints(const ClusterConfig& cc, int m) {
  std::vector<int64_t> out;
  int64_t lo = MinHeap(cc);
  int64_t hi = MaxHeap(cc);
  if (m <= 1) return {lo};
  double gap = static_cast<double>(hi - lo) / (m - 1);
  for (int i = 0; i < m; ++i) {
    out.push_back(lo + static_cast<int64_t>(i * gap));
  }
  return out;
}

std::vector<int64_t> ExpPoints(const ClusterConfig& cc) {
  std::vector<int64_t> out;
  int64_t lo = MinHeap(cc);
  int64_t hi = MaxHeap(cc);
  // Gaps g_i = 2^(i-1) * mincc, i.e. points at mincc * 2^k.
  for (int64_t p = lo; p <= hi; p *= 2) out.push_back(p);
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

std::vector<int64_t> MemPoints(const MlProgram* program,
                               const ClusterConfig& cc, int m) {
  std::vector<int64_t> base = EquiPoints(cc, m);
  std::set<int64_t> selected;
  int64_t lo = MinHeap(cc);
  int64_t hi = MaxHeap(cc);
  std::vector<int64_t> estimates =
      program != nullptr ? CollectMemoryEstimateHeaps(*program)
                         : std::vector<int64_t>{};
  for (int64_t est : estimates) {
    // Estimates outside the constraints fall back to the extreme values.
    int64_t clamped = std::clamp(est, lo, hi);
    if (clamped <= lo) {
      selected.insert(lo);
      continue;
    }
    if (clamped >= hi) {
      selected.insert(hi);
      continue;
    }
    // Enumerate both base points bracketing the estimate.
    auto it = std::upper_bound(base.begin(), base.end(), clamped);
    if (it != base.end()) selected.insert(*it);
    if (it != base.begin()) selected.insert(*(it - 1));
  }
  if (selected.empty()) selected.insert(lo);
  return std::vector<int64_t>(selected.begin(), selected.end());
}

}  // namespace

std::vector<int64_t> CollectMemoryEstimateHeaps(const MlProgram& program) {
  std::set<int64_t> heaps;
  for (StatementBlock* blk : program.AllBlocksPreOrder()) {
    if (!program.has_ir(blk->id())) continue;
    for (Hop* h : program.ir(blk->id()).dag.TopoOrder()) {
      if (!h->is_matrix() || h->fused()) continue;
      int64_t est = h->op_mem();
      if (est <= 0 || est >= kUnknownSizeSentinel) continue;
      // Heap at which a budget of 0.7*heap covers the estimate.
      heaps.insert(static_cast<int64_t>(
          static_cast<double>(est) / kMemoryBudgetFraction));
    }
  }
  return std::vector<int64_t>(heaps.begin(), heaps.end());
}

std::vector<int64_t> EnumGridPoints(const MlProgram* program,
                                    const ClusterConfig& cc, GridType type,
                                    int m) {
  switch (type) {
    case GridType::kEquiSpaced:
      return EquiPoints(cc, m);
    case GridType::kExpSpaced:
      return ExpPoints(cc);
    case GridType::kMemBased:
      return MemPoints(program, cc, m);
    case GridType::kHybrid: {
      std::vector<int64_t> mem = MemPoints(program, cc, m);
      std::vector<int64_t> exp = ExpPoints(cc);
      std::set<int64_t> all(mem.begin(), mem.end());
      all.insert(exp.begin(), exp.end());
      return std::vector<int64_t>(all.begin(), all.end());
    }
  }
  return {MinHeap(cc)};
}

}  // namespace relm

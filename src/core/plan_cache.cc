#include "core/plan_cache.h"

#include <future>

#include "analysis/analysis.h"
#include "analysis/dataflow.h"
#include "core/resource_optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashString(uint64_t* h, const std::string& s) {
  HashBytes(h, s.data(), s.size());
  // Separator so ("ab","c") and ("a","bc") differ.
  HashBytes(h, "\x1f", 1);
}

void HashInt(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashDouble(uint64_t* h, double v) { HashBytes(h, &v, sizeof(v)); }

}  // namespace

uint64_t ComputeScriptSignature(const std::string& source,
                                const ScriptArgs& args,
                                const SimulatedHdfs* hdfs) {
  uint64_t h = kFnvOffset;
  HashString(&h, source);
  for (const auto& [key, value] : args) {
    HashString(&h, key);
    HashString(&h, value);
  }
  // The namespace *instance* is part of the key, not just its metadata:
  // instance ids are never reused, so a destroyed session's entries
  // become unreachable instead of resolving — with a dangling hdfs
  // pointer — for a later session with identical metadata.
  HashInt(&h, hdfs != nullptr ? static_cast<int64_t>(hdfs->instance_id())
                              : 0);
  HashInt(&h, hdfs != nullptr
                  ? static_cast<int64_t>(hdfs->MetadataFingerprint())
                  : 0);
  return h;
}

namespace {

// Folds the dynamic-recompilation state (accumulated size overrides)
// into a base script digest; shared by the in-process and portable
// program signatures so both invalidate identically on re-optimization.
uint64_t FoldSizeOverrides(uint64_t h, const MlProgram& program) {
  for (const auto& [name, info] : program.size_overrides()) {
    HashString(&h, name);
    HashInt(&h, static_cast<int64_t>(info.dtype));
    HashInt(&h, info.mc.rows());
    HashInt(&h, info.mc.cols());
    HashInt(&h, info.mc.nnz());
    HashInt(&h, info.scalar_known ? 1 : 0);
    HashDouble(&h, info.scalar_value);
    HashString(&h, info.string_value);
  }
  return h;
}

}  // namespace

uint64_t ComputeProgramSignature(const MlProgram& program) {
  return FoldSizeOverrides(
      ComputeScriptSignature(program.source(), program.args(),
                             program.hdfs()),
      program);
}

uint64_t ComputeLeafInputSignature(const ScriptArgs& args,
                                   const SimulatedHdfs* hdfs) {
  uint64_t h = kFnvOffset;
  if (hdfs == nullptr) return h;
  // ScriptArgs is an ordered map, so the digest is deterministic. Only
  // argument values that name registered files contribute: those are
  // the program's leaf inputs, and drift anywhere else in the namespace
  // must not invalidate this program's artifacts.
  for (const auto& [key, value] : args) {
    Result<HdfsFile> file = hdfs->Get(value);
    if (!file.ok()) continue;
    HashString(&h, value);
    HashInt(&h, file->characteristics.rows());
    HashInt(&h, file->characteristics.cols());
    HashInt(&h, file->characteristics.nnz());
    HashInt(&h, static_cast<int64_t>(file->format));
    HashInt(&h, file->size_bytes);
  }
  return h;
}

uint64_t ComputePortableScriptSignature(const std::string& source,
                                        const ScriptArgs& args,
                                        const SimulatedHdfs* hdfs) {
  uint64_t h = kFnvOffset;
  HashString(&h, source);
  for (const auto& [key, value] : args) {
    HashString(&h, key);
    HashString(&h, value);
  }
  // No instance id and no whole-namespace fingerprint: this digest must
  // be stable across processes and insensitive to unrelated files, so
  // only the program's own leaf inputs are folded in.
  HashInt(&h, static_cast<int64_t>(ComputeLeafInputSignature(args, hdfs)));
  return h;
}

uint64_t ComputePortableProgramSignature(const MlProgram& program) {
  return FoldSizeOverrides(
      ComputePortableScriptSignature(program.source(), program.args(),
                                     program.hdfs()),
      program);
}

uint64_t ComputeOptimizerContextHash(const ClusterConfig& cc,
                                     const OptimizerOptions& opts) {
  uint64_t h = kFnvOffset;
  // Cluster model: everything the compiler backend and cost model read.
  HashInt(&h, cc.num_worker_nodes);
  HashInt(&h, cc.cores_per_node);
  HashInt(&h, cc.vcores_per_node);
  HashInt(&h, cc.memory_per_node);
  HashInt(&h, cc.min_allocation);
  HashInt(&h, cc.max_allocation);
  HashInt(&h, cc.hdfs_block_size);
  HashInt(&h, cc.num_reducers);
  HashDouble(&h, cc.mr_slot_availability);
  HashDouble(&h, cc.disk_read_mbps);
  HashDouble(&h, cc.disk_write_mbps);
  HashInt(&h, cc.disks_per_node);
  HashDouble(&h, cc.network_mbps);
  HashDouble(&h, cc.peak_gflops);
  HashDouble(&h, cc.mr_job_latency);
  HashDouble(&h, cc.mr_task_latency);
  HashDouble(&h, cc.container_alloc_latency);
  // Option fields that change a grid point's verdict. num_threads and
  // time_budget_seconds only steer enumeration, not per-point results.
  HashInt(&h, static_cast<int64_t>(opts.mr_grid));
  HashInt(&h, opts.grid_points);
  HashInt(&h, opts.prune_small_blocks ? 1 : 0);
  HashInt(&h, opts.prune_unknown_blocks ? 1 : 0);
  HashDouble(&h, opts.expected_failure_rate);
  // A calibration changes every compute charge, so its contents are
  // part of the costing context: a cached static verdict must never be
  // served to a calibrated run (or vice versa), and two different
  // calibrations must not share entries either.
  if (opts.calibration != nullptr) {
    HashInt(&h, static_cast<int64_t>(opts.calibration->Fingerprint()));
  }
  return h;
}

PlanCache::PlanCache() : PlanCache(Options()) {}

PlanCache::PlanCache(Options opts) : opts_(opts) {}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

/// One in-progress compile. The leader fills status/master, then
/// fulfils the promise; followers wait on the shared future (whose
/// release/acquire ordering publishes the fields) and clone the master
/// instead of compiling again.
struct PlanCache::InFlight {
  InFlight() : done(promise.get_future().share()) {}
  std::promise<void> promise;
  std::shared_future<void> done;
  Status status = Status::OK();
  std::shared_ptr<MlProgram> master;
  std::shared_ptr<const analysis::DataflowSummary> dataflow;
};

Result<std::unique_ptr<MlProgram>> PlanCache::GetOrCompile(
    const std::string& source, const ScriptArgs& args,
    const SimulatedHdfs* hdfs) {
  uint64_t sig = ComputeScriptSignature(source, args, hdfs);
  std::shared_ptr<MlProgram> master;
  std::shared_ptr<InFlight> flight;
  std::shared_ptr<PlanStore> store;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = programs_.find(sig);
    if (it != programs_.end()) {
      stats_.program_hits++;
      RELM_COUNTER_INC("plan_cache.program_hits");
      program_lru_.splice(program_lru_.begin(), program_lru_,
                          it->second.lru_it);
      master = it->second.master;  // pins the entry against eviction
    } else {
      auto in = inflight_.find(sig);
      if (in != inflight_.end()) {
        flight = in->second;
      } else {
        leader = true;
        flight = std::make_shared<InFlight>();
        inflight_[sig] = flight;
        store = store_;
      }
    }
  }
  // Clone outside the lock: cloning is a deterministic recompile, and
  // holding mu_ across it would serialize concurrent submissions.
  if (master != nullptr) return master->Clone();

  if (!leader) {
    // Coalesced miss: another thread is compiling this exact key; wait
    // for its master and count as a hit (exactly one miss per cold key).
    flight->done.wait();
    if (!flight->status.ok()) return flight->status;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.program_hits++;
    }
    RELM_COUNTER_INC("plan_cache.program_hits");
    return flight->master->Clone();
  }

  // Leader with an attached store: ask it (outside the lock — the store
  // may touch disk) whether it already holds validated artifacts for
  // this script against these exact leaf inputs. If so the compile
  // below is pure hydration of previously published work and counts as
  // a store hit, not a miss — "zero full compiles" on a warm cold-start
  // means exactly this counter split.
  bool store_hit = false;
  uint64_t portable_sig = 0;
  if (store != nullptr) {
    portable_sig = ComputePortableScriptSignature(source, args, hdfs);
    store_hit = store->HasValidProgram(portable_sig, hdfs);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (store_hit) {
      stats_.program_hits++;
      stats_.store_program_hits++;
    } else {
      stats_.program_misses++;
    }
  }
  if (store_hit) {
    RELM_COUNTER_INC("plan_cache.program_hits");
    RELM_COUNTER_INC("plan_cache.store_program_hits");
  } else {
    RELM_COUNTER_INC("plan_cache.program_misses");
  }

  // Leader: compile once (and clone the caller's private copy) outside
  // the lock, then publish to both the cache and any waiting followers.
  Status failure = Status::OK();
  std::unique_ptr<MlProgram> copy;
  {
    RELM_TRACE_SPAN("plan_cache.compile_miss");
    Result<std::unique_ptr<MlProgram>> compiled =
        MlProgram::Compile(source, args, hdfs);
    if (!compiled.ok()) {
      failure = compiled.status();
    } else {
      flight->master = std::shared_ptr<MlProgram>(std::move(*compiled));
      if (opts_.analyze_on_insert) {
        // Gate the insert: a structurally broken master must never be
        // published to followers or future tenants.
        analysis::AnalysisReport report =
            analysis::AnalyzeProgram(flight->master.get());
        failure = analysis::ReportToStatus(report);
        if (!failure.ok()) {
          flight->master = nullptr;
          RELM_COUNTER_INC("plan_cache.analysis_rejects");
        }
      }
      if (failure.ok()) {
        // The dataflow summary (liveness, static peak bounds) is a pure
        // function of the master: compute it once here — still outside
        // mu_ — and publish it alongside the program for LookupDataflow.
        flight->dataflow =
            std::make_shared<const analysis::DataflowSummary>(
                analysis::AnalyzeDataflow(*flight->master));
        Result<std::unique_ptr<MlProgram>> cloned =
            flight->master->Clone();
        if (!cloned.ok()) {
          failure = cloned.status();
          flight->master = nullptr;
          flight->dataflow = nullptr;
        } else {
          copy = std::move(*cloned);
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    flight->status = failure;
    // Clear() may have dropped (and a new leader replaced) our entry;
    // only remove the in-flight marker if it is still ours.
    auto in = inflight_.find(sig);
    if (in != inflight_.end() && in->second == flight) inflight_.erase(in);
    if (failure.ok() && programs_.find(sig) == programs_.end()) {
      program_lru_.push_front(sig);
      programs_[sig] = ProgramEntry{flight->master, flight->dataflow,
                                    program_lru_.begin()};
      while (programs_.size() > opts_.max_programs) {
        uint64_t victim = program_lru_.back();
        program_lru_.pop_back();
        programs_.erase(victim);
        stats_.evictions++;
        RELM_COUNTER_INC("plan_cache.evictions");
      }
    }
  }
  flight->promise.set_value();
  if (!failure.ok()) return failure;
  // Write-behind: publish the program record (portable signature +
  // leaf-input snapshot) so future processes can treat this compile as
  // hydration. Re-recording a store hit would only rewrite identical
  // metadata, so skip it.
  if (store != nullptr && !store_hit) {
    store->RecordProgram(portable_sig, args, hdfs);
  }
  return copy;
}

std::shared_ptr<const analysis::DataflowSummary> PlanCache::LookupDataflow(
    uint64_t script_sig) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = programs_.find(script_sig);
  return it != programs_.end() ? it->second.dataflow : nullptr;
}

std::optional<PlanCache::CachedCandidate> PlanCache::LookupWhatIf(
    const WhatIfKey& key) {
  std::shared_ptr<PlanStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = whatif_.find(key);
    if (it != whatif_.end()) {
      stats_.whatif_hits++;
      RELM_COUNTER_INC("plan_cache.whatif_hits");
      whatif_lru_.splice(whatif_lru_.begin(), whatif_lru_,
                         it->second.lru_it);
      return it->second.candidate;
    }
    store = store_;
  }
  // In-memory miss: read through to the persistent store (outside mu_ —
  // the lookup may touch disk). A hit is promoted into the LRU so the
  // grid loop's next pass over the same point stays in memory.
  if (store != nullptr && key.portable_sig != 0) {
    std::optional<CachedCandidate> hydrated = store->LookupWhatIf(
        PortableWhatIfKey{key.portable_sig, key.context_hash, key.cp_heap,
                          key.cp_cores});
    if (hydrated.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.whatif_hits++;
      stats_.store_whatif_hits++;
      RELM_COUNTER_INC("plan_cache.whatif_hits");
      RELM_COUNTER_INC("plan_cache.store_whatif_hits");
      InsertWhatIfLocked(key, *hydrated);
      return hydrated;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.whatif_misses++;
  RELM_COUNTER_INC("plan_cache.whatif_misses");
  return std::nullopt;
}

void PlanCache::InsertWhatIf(const WhatIfKey& key,
                             CachedCandidate candidate) {
  std::shared_ptr<PlanStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = store_;
    InsertWhatIfLocked(key, candidate);
  }
  // Write-behind, outside mu_: the store serializes internally and a
  // read-only store drops the record.
  if (store != nullptr && key.portable_sig != 0) {
    store->RecordWhatIf(
        PortableWhatIfKey{key.portable_sig, key.context_hash, key.cp_heap,
                          key.cp_cores},
        candidate);
  }
}

void PlanCache::InsertWhatIfLocked(const WhatIfKey& key,
                                   CachedCandidate candidate) {
  auto it = whatif_.find(key);
  if (it != whatif_.end()) {
    it->second.candidate = std::move(candidate);
    whatif_lru_.splice(whatif_lru_.begin(), whatif_lru_, it->second.lru_it);
    return;
  }
  whatif_lru_.push_front(key);
  whatif_[key] = WhatIfEntry{std::move(candidate), whatif_lru_.begin()};
  while (whatif_.size() > opts_.max_whatif_entries) {
    whatif_.erase(whatif_lru_.back());
    whatif_lru_.pop_back();
    stats_.evictions++;
    RELM_COUNTER_INC("plan_cache.evictions");
  }
}

void PlanCache::AttachStore(std::shared_ptr<PlanStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
}

std::shared_ptr<PlanStore> PlanCache::store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::NumPrograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return programs_.size();
}

size_t PlanCache::NumWhatIfEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return whatif_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  programs_.clear();
  program_lru_.clear();
  whatif_.clear();
  whatif_lru_.clear();
  stats_ = Stats();
}

}  // namespace relm

#ifndef RELM_CORE_RESOURCE_OPTIMIZER_H_
#define RELM_CORE_RESOURCE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/grid_generators.h"
#include "cost/cost_model.h"
#include "hops/ml_program.h"
#include "lops/compiler_backend.h"
#include "lops/resources.h"
#include "yarn/cluster_config.h"

namespace relm {

class PlanCache;  // core/plan_cache.h

/// Configuration of the resource optimizer. Construct with designated
/// defaults and refine with the chainable With*() setters:
///
///   auto opts = OptimizerOptions()
///                   .WithGridPoints(45)
///                   .WithGrids(GridType::kEquiSpaced)
///                   .WithThreads(4);
///
/// Validation is not the caller's job: every ResourceOptimizer entry
/// point runs Validate() on use and returns InvalidArgument for
/// nonsensical combinations.
struct OptimizerOptions {
  GridType cp_grid = GridType::kHybrid;
  GridType mr_grid = GridType::kHybrid;
  /// Base grid resolution m (equi-spaced / memory-based bracketing).
  int grid_points = 15;
  /// >1 enables the task-parallel optimizer (Appendix C).
  int num_threads = 1;
  /// Optimization time budget; enumeration stops when exceeded.
  double time_budget_seconds = 1e18;
  /// Pruning of blocks without MR jobs (monotonic dependency
  /// elimination) and of blocks whose MR operators are all unknown.
  bool prune_small_blocks = true;
  bool prune_unknown_blocks = true;
  /// Near-tie tolerance for the secondary objective: among
  /// configurations whose cost is within (1 + tolerance) of the minimum,
  /// the one with the smallest resource footprint wins (Definition 1's
  /// outer min — prevents unnecessary over-provisioning).
  double cost_tolerance = 0.02;
  /// CP thread counts to enumerate ("additional resources beyond
  /// memory", Section 6). Default {1} reproduces the paper's
  /// single-threaded CP; e.g. {1, 2, 4, 8} adds a third dimension.
  std::vector<int> cp_core_options = {1};
  /// Expected failures per busy container-second (0 disables). When set,
  /// plan costing adds expected-retry overhead so configurations with
  /// few large containers (large blast radius per failure) lose against
  /// many small ones on failure-prone clusters.
  double expected_failure_rate = 0.0;
  /// Read-through what-if cost cache (not owned; nullptr disables
  /// caching). Grid points whose (program signature, context, cp_heap,
  /// cp_cores) key is present skip recompilation entirely; misses are
  /// evaluated and inserted, shared across enumeration runs and across
  /// concurrent submissions of the same program.
  PlanCache* plan_cache = nullptr;
  /// Measured-throughput calibration applied to every cost-model
  /// invocation of the run (not owned; must outlive the optimization).
  /// nullptr keeps the static op_registry constants. The calibration's
  /// fingerprint is folded into the what-if cache context hash, so
  /// calibrated and static costings never share cache entries.
  const obs::CalibratedOpRegistry* calibration = nullptr;
  /// Debug/strict mode: run the full plan-integrity analysis
  /// (src/analysis) on every grid point's recompiled plan and fail the
  /// optimization on any error-severity diagnostic. Roughly doubles the
  /// per-point compile cost (the idempotence pass recompiles once more),
  /// so it is off by default and — like num_threads — deliberately
  /// excluded from the what-if context hash: it validates verdicts, it
  /// never changes them.
  bool strict_analysis = false;

  /// Rejects nonsensical combinations (non-positive grid resolution or
  /// thread count, negative rates/tolerances, empty or non-positive CP
  /// core options) with InvalidArgument. Run by every optimizer entry
  /// point, so callers never need ad-hoc checks.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  OptimizerOptions& WithGrids(GridType grid) {
    cp_grid = grid;
    mr_grid = grid;
    return *this;
  }
  OptimizerOptions& WithCpGrid(GridType grid) {
    cp_grid = grid;
    return *this;
  }
  OptimizerOptions& WithMrGrid(GridType grid) {
    mr_grid = grid;
    return *this;
  }
  OptimizerOptions& WithGridPoints(int m) {
    grid_points = m;
    return *this;
  }
  OptimizerOptions& WithThreads(int threads) {
    num_threads = threads;
    return *this;
  }
  OptimizerOptions& WithTimeBudget(double seconds) {
    time_budget_seconds = seconds;
    return *this;
  }
  OptimizerOptions& WithPruning(bool small_blocks, bool unknown_blocks) {
    prune_small_blocks = small_blocks;
    prune_unknown_blocks = unknown_blocks;
    return *this;
  }
  OptimizerOptions& WithCostTolerance(double tolerance) {
    cost_tolerance = tolerance;
    return *this;
  }
  OptimizerOptions& WithCpCoreOptions(std::vector<int> cores) {
    cp_core_options = std::move(cores);
    return *this;
  }
  OptimizerOptions& WithExpectedFailureRate(double rate) {
    expected_failure_rate = rate;
    return *this;
  }
  OptimizerOptions& WithPlanCache(PlanCache* cache) {
    plan_cache = cache;
    return *this;
  }
  OptimizerOptions& WithCalibration(
      const obs::CalibratedOpRegistry* registry) {
    calibration = registry;
    return *this;
  }
  OptimizerOptions& WithStrictAnalysis(bool strict = true) {
    strict_analysis = strict;
    return *this;
  }
};

/// One enumerated CP grid point (what-if evaluation) and its verdict in
/// the final selection: why it won or lost, including the
/// cost-tolerance tie-break toward the smaller resource footprint.
struct GridPointDecision {
  int64_t cp_mb = 0;       // CP heap, MB
  int64_t mr_mb = 0;       // largest per-block MR heap of the plan, MB
  int cp_cores = 1;
  double cost = 0.0;       // estimated plan cost, seconds
  double footprint = 0.0;  // tie-break resource footprint (bytes-ish)
  /// Blocks pruned before per-block MR enumeration at this point, and
  /// blocks that were enumerated.
  int pruned_blocks = 0;
  int enumerated_blocks = 0;
  bool winner = false;
  /// "win:min_cost", "win:tie_break_footprint", "lose:cost",
  /// "lose:tie_break_footprint", or "lose:filtered" (offer/local-only
  /// selection excluded it).
  std::string verdict;
};

/// Queryable record of every optimizer decision in one run; attached to
/// OptimizerStats so experiment harnesses can explain the outcome.
struct OptimizerTrace {
  std::vector<GridPointDecision> grid_points;

  /// The winning grid point, or nullptr when the run found no plan.
  const GridPointDecision* Winner() const;
  std::string ToJson() const;
};

/// Optimization statistics (Table 3 and Figures 13/14).
struct OptimizerStats {
  int64_t block_recompiles = 0;   // "# Comp."
  int64_t cost_invocations = 0;   // "# Cost."
  double opt_time_seconds = 0.0;  // "Opt. Time"
  int total_generic_blocks = 0;
  /// Blocks surviving pruning at the smallest CP grid point.
  int remaining_blocks_after_pruning = 0;
  int cp_grid_points = 0;
  int mr_grid_points = 0;
  double best_cost = 0.0;

  /// Options the run was configured with, so serialized stats are
  /// self-describing (bench JSON provenance).
  struct Provenance {
    int grid_points = 0;
    int num_threads = 0;
    double expected_failure_rate = 0.0;
    double cost_tolerance = 0.0;
    const char* cp_grid = "";
    const char* mr_grid = "";
  };
  Provenance provenance;

  /// Per-grid-point decision log (cp_mb, mr_mb, cost, pruning,
  /// win/lose reason).
  OptimizerTrace trace;

  std::string ToString() const;
  /// Self-describing JSON: counters + provenance + decision trace.
  std::string ToJson() const;
};

/// The cost-based resource optimizer (Section 3): enumerates CP x MR
/// memory grid points, exploits the semi-independent 2-dimensional
/// problem structure with a memo table, prunes irrelevant blocks, and
/// returns the minimal resource configuration with minimal estimated
/// cost.
class ResourceOptimizer {
 public:
  ResourceOptimizer(const ClusterConfig& cc, const OptimizerOptions& opts);

  /// Solves the ML program resource allocation problem (Definition 1).
  Result<ResourceConfig> Optimize(MlProgram* program,
                                  OptimizerStats* stats = nullptr);

  /// Extended variant for runtime re-optimization (Section 4.2): returns
  /// both the globally optimal configuration and the locally optimal one
  /// under the current (fixed) CP heap.
  struct ExtendedResult {
    ResourceConfig global;
    double global_cost = 0.0;
    ResourceConfig local;  // optimal with cp_heap fixed
    double local_cost = 0.0;
  };
  Result<ExtendedResult> OptimizeExtended(MlProgram* program,
                                          int64_t fixed_cp_heap,
                                          OptimizerStats* stats = nullptr);

  /// Offer-based instantiation of the resource allocation problem
  /// (Section 2.3, Mesos-style): the CP container must be taken from one
  /// of the offered heap sizes instead of the free request-based grid.
  /// MR task sizes remain requestable. Returns the best configuration
  /// whose CP heap matches an offer (non-matching offers are the
  /// "additional optimization decisions" the paper alludes to: we pick
  /// the cheapest plan over the offered points).
  Result<ResourceConfig> OptimizeForOffers(
      MlProgram* program, const std::vector<int64_t>& offered_cp_heaps,
      OptimizerStats* stats = nullptr);

  const OptimizerOptions& options() const { return opts_; }

 private:
  class Runner;
  ClusterConfig cc_;
  OptimizerOptions opts_;
};

}  // namespace relm

#endif  // RELM_CORE_RESOURCE_OPTIMIZER_H_

#include "core/resource_optimizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "analysis/analysis.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/plan_cache.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {

Status OptimizerOptions::Validate() const {
  if (grid_points <= 0) {
    return Status::InvalidArgument("grid_points must be positive");
  }
  if (num_threads <= 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (time_budget_seconds <= 0) {
    return Status::InvalidArgument("time_budget_seconds must be positive");
  }
  if (cost_tolerance < 0) {
    return Status::InvalidArgument("cost_tolerance must be non-negative");
  }
  if (expected_failure_rate < 0) {
    return Status::InvalidArgument(
        "expected_failure_rate must be non-negative");
  }
  for (int cores : cp_core_options) {
    if (cores <= 0) {
      return Status::InvalidArgument(
          "cp_core_options entries must be positive");
    }
  }
  return Status::OK();
}

const GridPointDecision* OptimizerTrace::Winner() const {
  for (const GridPointDecision& d : grid_points) {
    if (d.winner) return &d;
  }
  return nullptr;
}

std::string OptimizerTrace::ToJson() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < grid_points.size(); ++i) {
    const GridPointDecision& d = grid_points[i];
    if (i > 0) os << ",";
    os << "{\"cp_mb\":" << d.cp_mb << ",\"mr_mb\":" << d.mr_mb
       << ",\"cp_cores\":" << d.cp_cores
       << ",\"cost\":" << obs::JsonNumber(d.cost)
       << ",\"footprint\":" << obs::JsonNumber(d.footprint)
       << ",\"pruned_blocks\":" << d.pruned_blocks
       << ",\"enumerated_blocks\":" << d.enumerated_blocks
       << ",\"winner\":" << (d.winner ? "true" : "false")
       << ",\"verdict\":" << obs::JsonQuote(d.verdict) << "}";
  }
  os << "]";
  return os.str();
}

std::string OptimizerStats::ToString() const {
  std::ostringstream os;
  os << "#comp=" << block_recompiles << " #cost=" << cost_invocations
     << " time=" << FormatDouble(opt_time_seconds, 3) << "s blocks="
     << remaining_blocks_after_pruning << "/" << total_generic_blocks
     << " grid=" << cp_grid_points << "x" << mr_grid_points
     << " best=" << FormatDouble(best_cost, 2) << "s"
     << " [m=" << provenance.grid_points
     << " threads=" << provenance.num_threads
     << " failure_rate=" << FormatDouble(provenance.expected_failure_rate, 4)
     << "]";
  return os.str();
}

std::string OptimizerStats::ToJson() const {
  std::ostringstream os;
  os << "{\"block_recompiles\":" << block_recompiles
     << ",\"cost_invocations\":" << cost_invocations
     << ",\"opt_time_seconds\":" << obs::JsonNumber(opt_time_seconds)
     << ",\"total_generic_blocks\":" << total_generic_blocks
     << ",\"remaining_blocks_after_pruning\":"
     << remaining_blocks_after_pruning
     << ",\"cp_grid_points\":" << cp_grid_points
     << ",\"mr_grid_points\":" << mr_grid_points
     << ",\"best_cost\":" << obs::JsonNumber(best_cost)
     << ",\"provenance\":{\"grid_points\":" << provenance.grid_points
     << ",\"num_threads\":" << provenance.num_threads
     << ",\"expected_failure_rate\":"
     << obs::JsonNumber(provenance.expected_failure_rate)
     << ",\"cost_tolerance\":" << obs::JsonNumber(provenance.cost_tolerance)
     << ",\"cp_grid\":" << obs::JsonQuote(provenance.cp_grid)
     << ",\"mr_grid\":" << obs::JsonQuote(provenance.mr_grid)
     << "},\"grid_point_trace\":" << trace.ToJson() << "}";
  return os.str();
}

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Time-weighted resource footprint used to break cost ties toward the
/// minimal configuration (Definition 1's outer min).
double ResourceFootprint(const ResourceConfig& rc,
                         const std::vector<int>& block_ids) {
  double total = static_cast<double>(rc.cp_heap);
  for (int id : block_ids) {
    total += static_cast<double>(rc.MrHeapForBlock(id)) /
             std::max<size_t>(block_ids.size(), 1);
  }
  // Extra CP cores count as a (small) resource: ties prefer fewer.
  total += static_cast<double>(rc.cp_cores - 1) * kMB;
  return total;
}

/// True if all MR operators of the block have unknown dimensions (their
/// plans cannot differ across MR budgets).
bool AllMrOpsUnknown(const BlockIR& ir) {
  bool any_mr = false;
  for (Hop* h : ir.dag.TopoOrder()) {
    if (h->exec_type() != ExecType::kMR || h->fused()) continue;
    if (!h->is_matrix()) continue;
    any_mr = true;
    if (h->mc().dims_known()) return false;
  }
  return any_mr;
}

}  // namespace

/// One optimization run. Owns the per-run state (memo, counters).
class ResourceOptimizer::Runner {
 public:
  Runner(const ClusterConfig& cc, const OptimizerOptions& opts,
         MlProgram* program)
      : cc_(cc),
        opts_(opts),
        program_(program),
        cost_model_(cc, opts.expected_failure_rate) {
    cost_model_.set_calibration(opts.calibration);
  }

  /// Runs the full grid enumeration. If fixed_cp >= 0, only that CP heap
  /// is enumerated (runtime re-optimization's local variant).
  /// Restricts the CP dimension to the given points (offer-based mode).
  void RestrictCpPoints(std::vector<int64_t> points) {
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    custom_src_ = std::move(points);
  }

  Result<ResourceOptimizer::ExtendedResult> Run(int64_t fixed_cp,
                                                OptimizerStats* stats) {
    RELM_TRACE_SPAN("optimize.run");
    RELM_COUNTER_INC("optimizer.runs");
    RELM_RETURN_IF_ERROR(opts_.Validate());
    cache_ = opts_.plan_cache;
    if (cache_ != nullptr) {
      program_sig_ = ComputeProgramSignature(*program_);
      portable_sig_ = ComputePortableProgramSignature(*program_);
      context_hash_ = ComputeOptimizerContextHash(cc_, opts_);
    }
    auto start = Clock::now();
    std::vector<int64_t> src =
        custom_src_.empty()
            ? EnumGridPoints(program_, cc_, opts_.cp_grid,
                             opts_.grid_points)
            : custom_src_;
    std::vector<int64_t> srm =
        EnumGridPoints(program_, cc_, opts_.mr_grid, opts_.grid_points);
    if (fixed_cp >= 0) {
      // Keep the fixed point plus the full grid for the global result.
      if (std::find(src.begin(), src.end(), fixed_cp) == src.end()) {
        src.push_back(fixed_cp);
        std::sort(src.begin(), src.end());
      }
    }
    generic_blocks_.clear();
    for (StatementBlock* b : program_->AllBlocksPreOrder()) {
      if (b->IsLastLevel()) generic_blocks_.push_back(b);
    }
    block_ids_.clear();
    for (StatementBlock* b : generic_blocks_) {
      block_ids_.push_back(b->id());
    }

    if (stats != nullptr) {
      stats->cp_grid_points = static_cast<int>(src.size());
      stats->mr_grid_points = static_cast<int>(srm.size());
      stats->total_generic_blocks =
          static_cast<int>(generic_blocks_.size());
      stats->remaining_blocks_after_pruning = -1;
      stats->provenance.grid_points = opts_.grid_points;
      stats->provenance.num_threads = opts_.num_threads;
      stats->provenance.expected_failure_rate =
          opts_.expected_failure_rate;
      stats->provenance.cost_tolerance = opts_.cost_tolerance;
      stats->provenance.cp_grid = GridTypeName(opts_.cp_grid);
      stats->provenance.mr_grid = GridTypeName(opts_.mr_grid);
    }

    std::vector<int> core_options = opts_.cp_core_options;
    if (core_options.empty()) core_options = {1};
    if (opts_.num_threads > 1) {
      RELM_RETURN_IF_ERROR(
          RunParallel(src, srm, fixed_cp, start, stats));
    } else {
      for (int cores : core_options) {
        for (int64_t rc : src) {
          if (Seconds(start) > opts_.time_budget_seconds) break;
          if (CandidateFromCache(rc, cores, stats)) continue;
          RELM_ASSIGN_OR_RETURN(
              CandidateResult cand,
              EvaluateCpPoint(program_, rc, cores, srm, stats));
          InsertIntoCache(rc, cores, cand);
          candidates_.push_back(std::move(cand));
        }
      }
    }

    if (candidates_.empty()) {
      return Status::ResourceError("resource optimization found no plan");
    }
    // Final selection (Definition 1): minimal cost; among near-ties the
    // minimal resource footprint wins.
    ResourceOptimizer::ExtendedResult result;
    bool have_global = SelectBest(
        [](const CandidateResult&) { return true; }, &result.global,
        &result.global_cost);
    bool have_local =
        fixed_cp < 0 ||
        SelectBest(
            [&](const CandidateResult& c) {
              return c.config.cp_heap == fixed_cp;
            },
            &result.local, &result.local_cost);
    if (!have_global || !have_local) {
      return Status::ResourceError("resource optimization found no plan");
    }
    if (stats != nullptr) {
      stats->block_recompiles += counters_.block_compiles;
      stats->cost_invocations += cost_model_.num_invocations() +
                                 parallel_cost_invocations_.load();
      stats->opt_time_seconds = Seconds(start);
      stats->best_cost = result.global_cost;
      BuildDecisionTrace(&stats->trace);
    }
    // Route the run's counters through the metrics registry at the same
    // sites that update OptimizerStats, so telemetry cannot drift from
    // the hand-maintained statistics.
    RELM_COUNTER_ADD("optimizer.block_recompiles",
                     counters_.block_compiles);
    RELM_COUNTER_ADD("optimizer.cost_invocations",
                     cost_model_.num_invocations() +
                         parallel_cost_invocations_.load());
    RELM_COUNTER_ADD("optimizer.grid_points_evaluated",
                     static_cast<int64_t>(candidates_.size()));
    RELM_HISTOGRAM_OBSERVE("optimizer.opt_time_seconds", Seconds(start));
    return result;
  }

 private:
  /// Result of evaluating one CP grid point.
  struct CandidateResult {
    ResourceConfig config;
    double cost = 0.0;
    int pruned_blocks = 0;
    int enumerated_blocks = 0;
  };

  WhatIfKey CacheKey(int64_t rc, int cores) const {
    WhatIfKey key;
    key.program_sig = program_sig_;
    key.context_hash = context_hash_;
    key.portable_sig = portable_sig_;
    key.cp_heap = rc;
    key.cp_cores = cores;
    return key;
  }

  /// Read-through of the shared what-if cache for one CP grid point.
  /// On a hit the memoized candidate (per-block MR heaps + cost) is
  /// appended to candidates_ — no block recompilation happens at all —
  /// and true is returned.
  bool CandidateFromCache(int64_t rc, int cores, OptimizerStats* stats) {
    if (cache_ == nullptr) return false;
    std::optional<PlanCache::CachedCandidate> hit =
        cache_->LookupWhatIf(CacheKey(rc, cores));
    if (!hit.has_value()) return false;
    CandidateResult cand;
    cand.config = std::move(hit->config);
    cand.cost = hit->cost;
    cand.pruned_blocks = hit->pruned_blocks;
    cand.enumerated_blocks = hit->enumerated_blocks;
    if (stats != nullptr && stats->remaining_blocks_after_pruning < 0) {
      stats->remaining_blocks_after_pruning = cand.enumerated_blocks;
    }
    candidates_.push_back(std::move(cand));
    return true;
  }

  void InsertIntoCache(int64_t rc, int cores, const CandidateResult& cand) {
    if (cache_ == nullptr) return;
    PlanCache::CachedCandidate entry;
    entry.config = cand.config;
    entry.cost = cand.cost;
    entry.pruned_blocks = cand.pruned_blocks;
    entry.enumerated_blocks = cand.enumerated_blocks;
    cache_->InsertWhatIf(CacheKey(rc, cores), std::move(entry));
  }

  /// Reconstructs the final selection's reasoning over all collected
  /// candidates: the minimum-cost threshold, the tolerance window, and
  /// the footprint tie-break (Definition 1's outer min), recording a
  /// verdict per enumerated grid point.
  void BuildDecisionTrace(OptimizerTrace* trace) {
    trace->grid_points.clear();
    if (candidates_.empty()) return;
    double min_cost = candidates_[0].cost;
    for (const auto& c : candidates_) min_cost = std::min(min_cost, c.cost);
    double threshold = min_cost * (1.0 + opts_.cost_tolerance);
    size_t winner = candidates_.size();
    double winner_fp = 0.0;
    std::vector<double> footprints(candidates_.size());
    for (size_t i = 0; i < candidates_.size(); ++i) {
      footprints[i] = ResourceFootprint(candidates_[i].config, block_ids_);
      if (candidates_[i].cost > threshold) continue;
      if (winner == candidates_.size() || footprints[i] < winner_fp) {
        winner = i;
        winner_fp = footprints[i];
      }
    }
    for (size_t i = 0; i < candidates_.size(); ++i) {
      const CandidateResult& c = candidates_[i];
      GridPointDecision d;
      d.cp_mb = c.config.cp_heap / kMB;
      d.mr_mb = c.config.MaxMrHeap() / kMB;
      d.cp_cores = c.config.cp_cores;
      d.cost = c.cost;
      d.footprint = footprints[i];
      d.pruned_blocks = c.pruned_blocks;
      d.enumerated_blocks = c.enumerated_blocks;
      d.winner = (i == winner);
      if (i == winner) {
        d.verdict = c.cost <= min_cost ? "win:min_cost"
                                       : "win:tie_break_footprint";
      } else if (c.cost > threshold) {
        d.verdict = "lose:cost";
      } else {
        d.verdict = "lose:tie_break_footprint";
      }
      trace->grid_points.push_back(std::move(d));
    }
    std::sort(trace->grid_points.begin(), trace->grid_points.end(),
              [](const GridPointDecision& a, const GridPointDecision& b) {
                if (a.cp_mb != b.cp_mb) return a.cp_mb < b.cp_mb;
                return a.cp_cores < b.cp_cores;
              });
  }

  /// Lines 6-17 of Algorithm 1 for a single (rc, cores) point.
  Result<CandidateResult> EvaluateCpPoint(MlProgram* program, int64_t rc,
                                          int cores,
                                          const std::vector<int64_t>& srm,
                                          OptimizerStats* stats) {
    RELM_TRACE_SPAN_ARGS("optimize.grid_point", [&] {
      return "\"cp_mb\":" + std::to_string(rc / kMB) +
             ",\"cp_cores\":" + std::to_string(cores);
    });
    int64_t min_mr = cc_.MinHeapSize();
    // Baseline compilation with minimal MR resources.
    ResourceConfig base_cfg(rc, min_mr, cores);
    RELM_ASSIGN_OR_RETURN(
        RuntimeProgram base,
        GenerateRuntimeProgram(program, cc_, base_cfg, &counters_));

    // Block index for pruning and costing.
    std::unordered_map<int, const RuntimeBlock*> rt_blocks;
    IndexBlocks(base.main, &rt_blocks);
    for (const auto& [name, blocks] : base.functions) {
      IndexBlocks(blocks, &rt_blocks);
    }

    // Prune program blocks (Section 3.4).
    std::vector<StatementBlock*> remaining;
    for (StatementBlock* b : generic_blocks_) {
      auto it = rt_blocks.find(b->id());
      if (it == rt_blocks.end()) continue;  // dead branch
      if (opts_.prune_small_blocks) {
        // Monotonic dependency elimination: once MR-free at a smaller
        // rc, a block never reintroduces MR jobs at a larger rc.
        if (pruned_forever_.count(b->id())) continue;
        if (it->second->NumMrJobs() == 0) {
          pruned_forever_.insert(b->id());
          continue;
        }
      }
      if (opts_.prune_unknown_blocks &&
          AllMrOpsUnknown(program->ir(b->id()))) {
        continue;
      }
      remaining.push_back(b);
    }
    if (stats != nullptr && stats->remaining_blocks_after_pruning < 0) {
      stats->remaining_blocks_after_pruning =
          static_cast<int>(remaining.size());
    }

    // Memoized per-block best MR resources under this rc.
    std::map<int, std::pair<int64_t, double>> memo;
    for (StatementBlock* b : remaining) {
      double base_cost =
          cost_model_.EstimateBlockCost(*rt_blocks.at(b->id()), base);
      memo[b->id()] = {min_mr, base_cost};
      for (int64_t ri : srm) {
        if (ri == min_mr) continue;
        ResourceConfig cfg_i(rc, min_mr, cores);
        cfg_i.per_block_mr_heap[b->id()] = ri;
        RELM_ASSIGN_OR_RETURN(
            RuntimeBlock rb,
            CompileBlockPlan(program, cc_, b, cfg_i, &counters_));
        RuntimeProgram probe;
        probe.resources = cfg_i;
        double cost = cost_model_.EstimateBlockCost(rb, probe);
        if (cost < memo[b->id()].second) {
          memo[b->id()] = {ri, cost};
        }
      }
    }

    // Full-program compilation and costing with the memoized vector.
    CandidateResult cand;
    cand.config = ResourceConfig(rc, min_mr, cores);
    cand.enumerated_blocks = static_cast<int>(remaining.size());
    cand.pruned_blocks = static_cast<int>(generic_blocks_.size()) -
                         cand.enumerated_blocks;
    for (const auto& [id, entry] : memo) {
      if (entry.first != min_mr) {
        cand.config.per_block_mr_heap[id] = entry.first;
      }
    }
    RELM_ASSIGN_OR_RETURN(
        RuntimeProgram full,
        GenerateRuntimeProgram(program, cc_, cand.config, &counters_));
    cand.cost = cost_model_.EstimateProgramCost(full);
    if (opts_.strict_analysis) {
      RELM_RETURN_IF_ERROR(StrictCheck(program, full));
    }
    return cand;
  }

  /// Strict-mode gate: every grid point's recompiled plan must pass the
  /// full integrity analysis before its cost may enter the selection.
  Status StrictCheck(MlProgram* program, const RuntimeProgram& full) {
    RELM_TRACE_SPAN("optimize.strict_analysis");
    analysis::AnalysisReport report =
        analysis::AnalyzeRuntimePlan(program, full, cc_);
    return analysis::ReportToStatus(report);
  }

  /// Picks from the collected candidates matching `filter`: minimum
  /// cost, then minimal resource footprint among configurations within
  /// the cost tolerance. Returns false if no candidate matches.
  template <typename Filter>
  bool SelectBest(Filter filter, ResourceConfig* config, double* cost) {
    double min_cost = -1;
    for (const auto& c : candidates_) {
      if (!filter(c)) continue;
      if (min_cost < 0 || c.cost < min_cost) min_cost = c.cost;
    }
    if (min_cost < 0) return false;
    double threshold = min_cost * (1.0 + opts_.cost_tolerance);
    const CandidateResult* best = nullptr;
    double best_footprint = 0;
    for (const auto& c : candidates_) {
      if (!filter(c) || c.cost > threshold) continue;
      double fp = ResourceFootprint(c.config, block_ids_);
      if (best == nullptr || fp < best_footprint) {
        best = &c;
        best_footprint = fp;
      }
    }
    *config = best->config;
    *cost = best->cost;
    return true;
  }

  static void IndexBlocks(
      const std::vector<RuntimeBlock>& blocks,
      std::unordered_map<int, const RuntimeBlock*>* out) {
    for (const auto& b : blocks) {
      (*out)[b.block->id()] = &b;
      IndexBlocks(b.body, out);
      IndexBlocks(b.else_body, out);
    }
  }

  /// Task-parallel enumeration (Appendix C): the master performs the
  /// baseline compilation and pruning per rc; workers (each owning a
  /// deep copy of the program) evaluate per-block MR grids and aggregate
  /// rc candidates once all blocks of that rc are memoized.
  Status RunParallel(const std::vector<int64_t>& src,
                     const std::vector<int64_t>& srm, int64_t fixed_cp,
                     Clock::time_point start, OptimizerStats* stats) {
    struct EnumTask {
      int64_t rc;
      int block_id;
      size_t rc_index;
    };
    struct RcState {
      std::atomic<int> outstanding{0};
      std::map<int, std::pair<int64_t, double>> memo;  // guarded by mu
      std::mutex mu;
    };

    std::deque<EnumTask> queue;
    std::mutex queue_mu;
    std::condition_variable queue_cv;
    bool done_producing = false;
    std::vector<std::unique_ptr<RcState>> rc_states;
    Status worker_error;
    std::mutex result_mu;

    // Pre-plan: baseline compile + prune per rc on the master program.
    int64_t min_mr = cc_.MinHeapSize();
    std::vector<std::pair<int64_t, std::vector<int>>> plans;
    for (int64_t rc : src) {
      if (Seconds(start) > opts_.time_budget_seconds) break;
      // Shared-cache read-through (Fig 18 path): a memoized grid point
      // skips baseline compilation and per-block enumeration entirely —
      // no tasks are produced for it.
      if (CandidateFromCache(rc, 1, stats)) continue;
      ResourceConfig base_cfg(rc, min_mr);
      RELM_ASSIGN_OR_RETURN(
          RuntimeProgram base,
          GenerateRuntimeProgram(program_, cc_, base_cfg, &counters_));
      std::unordered_map<int, const RuntimeBlock*> rt_blocks;
      IndexBlocks(base.main, &rt_blocks);
      for (const auto& [name, blocks] : base.functions) {
        IndexBlocks(blocks, &rt_blocks);
      }
      std::vector<int> remaining;
      for (StatementBlock* b : generic_blocks_) {
        auto it = rt_blocks.find(b->id());
        if (it == rt_blocks.end()) continue;
        if (opts_.prune_small_blocks) {
          if (pruned_forever_.count(b->id())) continue;
          if (it->second->NumMrJobs() == 0) {
            pruned_forever_.insert(b->id());
            continue;
          }
        }
        if (opts_.prune_unknown_blocks &&
            AllMrOpsUnknown(program_->ir(b->id()))) {
          continue;
        }
        remaining.push_back(b->id());
      }
      if (stats != nullptr && stats->remaining_blocks_after_pruning < 0) {
        stats->remaining_blocks_after_pruning =
            static_cast<int>(remaining.size());
      }
      plans.emplace_back(rc, std::move(remaining));
    }

    rc_states.resize(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      rc_states[i] = std::make_unique<RcState>();
      rc_states[i]->outstanding.store(
          std::max<int>(1, static_cast<int>(plans[i].second.size())));
    }

    auto worker_fn = [&]() {
      auto clone_result = program_->Clone();
      if (!clone_result.ok()) {
        std::lock_guard<std::mutex> lock(result_mu);
        worker_error = clone_result.status();
        return;
      }
      std::unique_ptr<MlProgram> local_program =
          std::move(*clone_result);
      CostModel local_cost(cc_, opts_.expected_failure_rate);
      local_cost.set_calibration(opts_.calibration);
      CompileCounters local_counters;

      // Resolve block ids on the clone.
      std::unordered_map<int, StatementBlock*> blocks_by_id;
      for (StatementBlock* b : local_program->AllBlocksPreOrder()) {
        blocks_by_id[b->id()] = b;
      }

      auto finish_rc = [&](size_t rc_index) {
        // Aggregate: compile the whole program with the memoized vector.
        RELM_TRACE_SPAN_ARGS("optimize.aggregate_rc", [&] {
          return "\"cp_mb\":" +
                 std::to_string(plans[rc_index].first / kMB);
        });
        RcState& state = *rc_states[rc_index];
        int64_t rc = plans[rc_index].first;
        CandidateResult cand;
        cand.config = ResourceConfig(rc, min_mr);
        cand.enumerated_blocks =
            static_cast<int>(plans[rc_index].second.size());
        cand.pruned_blocks = static_cast<int>(generic_blocks_.size()) -
                             cand.enumerated_blocks;
        {
          std::lock_guard<std::mutex> lock(state.mu);
          for (const auto& [id, entry] : state.memo) {
            if (entry.first != min_mr) {
              cand.config.per_block_mr_heap[id] = entry.first;
            }
          }
        }
        auto full = GenerateRuntimeProgram(local_program.get(), cc_,
                                           cand.config, &local_counters);
        if (!full.ok()) {
          std::lock_guard<std::mutex> lock(result_mu);
          worker_error = full.status();
          return;
        }
        cand.cost = local_cost.EstimateProgramCost(*full);
        if (opts_.strict_analysis) {
          Status strict = StrictCheck(local_program.get(), *full);
          if (!strict.ok()) {
            std::lock_guard<std::mutex> lock(result_mu);
            worker_error = strict;
            return;
          }
        }
        InsertIntoCache(rc, 1, cand);
        std::lock_guard<std::mutex> lock(result_mu);
        candidates_.push_back(std::move(cand));
      };

      while (true) {
        EnumTask task;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          queue_cv.wait(lock, [&] {
            return !queue.empty() || done_producing;
          });
          if (queue.empty()) break;
          task = queue.front();
          queue.pop_front();
        }
        RcState& state = *rc_states[task.rc_index];
        if (task.block_id >= 0) {
          RELM_TRACE_SPAN_ARGS("optimize.block_grid", [&] {
            return "\"cp_mb\":" + std::to_string(task.rc / kMB) +
                   ",\"block\":" + std::to_string(task.block_id);
          });
          StatementBlock* blk = blocks_by_id[task.block_id];
          int64_t best_ri = min_mr;
          double best_cost = -1;
          for (int64_t ri : srm) {
            ResourceConfig cfg_i(task.rc, min_mr);
            cfg_i.per_block_mr_heap[task.block_id] = ri;
            auto rb = CompileBlockPlan(local_program.get(), cc_, blk,
                                       cfg_i, &local_counters);
            if (!rb.ok()) {
              std::lock_guard<std::mutex> lock(result_mu);
              worker_error = rb.status();
              return;
            }
            RuntimeProgram probe;
            probe.resources = cfg_i;
            double cost = local_cost.EstimateBlockCost(*rb, probe);
            if (best_cost < 0 || cost < best_cost) {
              best_cost = cost;
              best_ri = ri;
            }
          }
          {
            std::lock_guard<std::mutex> lock(state.mu);
            state.memo[task.block_id] = {best_ri, best_cost};
          }
        }
        if (state.outstanding.fetch_sub(1) == 1) {
          finish_rc(task.rc_index);
        }
      }
      // Fold local counters into the shared ones.
      std::lock_guard<std::mutex> lock(result_mu);
      counters_.block_compiles += local_counters.block_compiles;
      parallel_cost_invocations_.fetch_add(local_cost.num_invocations());
    };

    std::vector<std::thread> workers;
    int n = std::max(1, opts_.num_threads);
    workers.reserve(n);
    for (int i = 0; i < n; ++i) workers.emplace_back(worker_fn);

    // Produce tasks (pipelined with workers).
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      for (size_t i = 0; i < plans.size(); ++i) {
        if (plans[i].second.empty()) {
          queue.push_back(EnumTask{plans[i].first, -1, i});
          continue;
        }
        for (int id : plans[i].second) {
          queue.push_back(EnumTask{plans[i].first, id, i});
        }
      }
      done_producing = true;
    }
    queue_cv.notify_all();
    for (auto& w : workers) w.join();
    return worker_error;
  }

  ClusterConfig cc_;
  OptimizerOptions opts_;
  MlProgram* program_;
  CostModel cost_model_;
  CompileCounters counters_;
  std::vector<StatementBlock*> generic_blocks_;
  std::vector<int> block_ids_;
  std::set<int> pruned_forever_;
  std::vector<CandidateResult> candidates_;
  std::vector<int64_t> custom_src_;
  std::atomic<int64_t> parallel_cost_invocations_{0};
  PlanCache* cache_ = nullptr;  // not owned; nullptr = caching disabled
  uint64_t program_sig_ = 0;
  uint64_t portable_sig_ = 0;
  uint64_t context_hash_ = 0;
};

ResourceOptimizer::ResourceOptimizer(const ClusterConfig& cc,
                                     const OptimizerOptions& opts)
    : cc_(cc), opts_(opts) {}

Result<ResourceConfig> ResourceOptimizer::Optimize(MlProgram* program,
                                                   OptimizerStats* stats) {
  Runner runner(cc_, opts_, program);
  RELM_ASSIGN_OR_RETURN(ExtendedResult res, runner.Run(-1, stats));
  return res.global;
}

Result<ResourceOptimizer::ExtendedResult> ResourceOptimizer::OptimizeExtended(
    MlProgram* program, int64_t fixed_cp_heap, OptimizerStats* stats) {
  Runner runner(cc_, opts_, program);
  return runner.Run(fixed_cp_heap, stats);
}

Result<ResourceConfig> ResourceOptimizer::OptimizeForOffers(
    MlProgram* program, const std::vector<int64_t>& offered_cp_heaps,
    OptimizerStats* stats) {
  if (offered_cp_heaps.empty()) {
    return Status::InvalidArgument("no resource offers to optimize over");
  }
  std::vector<int64_t> clamped;
  for (int64_t heap : offered_cp_heaps) {
    if (heap < cc_.MinHeapSize() || heap > cc_.MaxHeapSize()) continue;
    clamped.push_back(heap);
  }
  if (clamped.empty()) {
    return Status::ResourceError(
        "no offered container satisfies the cluster's allocation "
        "constraints");
  }
  Runner runner(cc_, opts_, program);
  runner.RestrictCpPoints(std::move(clamped));
  RELM_ASSIGN_OR_RETURN(ExtendedResult res, runner.Run(-1, stats));
  return res.global;
}

}  // namespace relm

#ifndef RELM_CORE_COST_ORACLE_H_
#define RELM_CORE_COST_ORACLE_H_

// Read-through adapter from the scheduler's CostOracle interface onto
// the PlanCache's what-if cost cache (DESIGN.md §16). The JobService
// records, after each optimization, which what-if grid point won for a
// script signature (Observe); subsequent scheduling decisions for the
// same script resolve their runtime estimate by reading that cached
// candidate back — never by recomputation. The optimizer already paid
// for the estimate; the scheduler gets it for a hash lookup.
//
// A small memo keeps the last observed cost per signature so estimates
// survive what-if LRU eviction (the memo is the fallback, the cache the
// authority). Thread-safe: Observe and EstimateRuntimeSeconds race
// freely across submit and worker threads.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "core/plan_cache.h"
#include "sched/scheduler.h"

namespace relm {

class PlanCacheCostOracle : public sched::CostOracle {
 public:
  /// `cache` is not owned; nullptr degrades to memo-only estimates.
  explicit PlanCacheCostOracle(PlanCache* cache) : cache_(cache) {}

  /// Records the winning grid point (`key`) and its cost for the plan
  /// behind `script_signature`. Called by the serving tier right after
  /// optimization, where both are free.
  void Observe(uint64_t script_signature, const WhatIfKey& key,
               double cost_seconds);

  /// sched::CostOracle: cached estimate or < 0 when the script has
  /// never been optimized (cold scripts are scheduled estimate-free
  /// and gain an estimate after their first optimization).
  double EstimateRuntimeSeconds(uint64_t script_signature) const override;

  size_t NumEntries() const;

 private:
  struct Entry {
    WhatIfKey key;
    double last_cost_seconds = -1.0;
  };

  /// Bound on memoized signatures; far above any realistic distinct
  /// script count, present so a signature-churning workload (e.g. per
  /// job unique args) cannot grow the map without limit.
  static constexpr size_t kMaxEntries = 4096;

  PlanCache* cache_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_ RELM_GUARDED_BY(mu_);
};

}  // namespace relm

#endif  // RELM_CORE_COST_ORACLE_H_

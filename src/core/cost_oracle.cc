#include "core/cost_oracle.h"

namespace relm {

void PlanCacheCostOracle::Observe(uint64_t script_signature,
                                  const WhatIfKey& key,
                                  double cost_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= kMaxEntries &&
      entries_.find(script_signature) == entries_.end()) {
    // At capacity: drop an arbitrary entry (unordered_map begin). The
    // evicted script re-observes on its next optimization.
    entries_.erase(entries_.begin());
  }
  Entry& entry = entries_[script_signature];
  entry.key = key;
  entry.last_cost_seconds = cost_seconds;
}

double PlanCacheCostOracle::EstimateRuntimeSeconds(
    uint64_t script_signature) const {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(script_signature);
    if (it == entries_.end()) return -1.0;
    entry = it->second;
  }
  if (cache_ != nullptr) {
    // Read through the shared what-if cache: the authoritative cost of
    // the winning grid point, refreshed in the LRU by this lookup.
    std::optional<PlanCache::CachedCandidate> cached =
        cache_->LookupWhatIf(entry.key);
    if (cached.has_value()) return cached->cost;
  }
  // Evicted from the cache (or cache-less service): the memoized cost
  // from the last optimization still beats scheduling blind.
  return entry.last_cost_seconds;
}

size_t PlanCacheCostOracle::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace relm

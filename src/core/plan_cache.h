#ifndef RELM_CORE_PLAN_CACHE_H_
#define RELM_CORE_PLAN_CACHE_H_

// Memoization layer shared by concurrent job submissions and by the
// optimizer's grid enumeration:
//
//   (a) a compiled-program cache keyed by (script hash, args, hdfs
//       namespace identity + input metadata): identical submissions
//       against the same namespace share one validated master program
//       and receive private deep copies;
//   (b) a what-if cost cache keyed by (program signature, optimizer
//       context, CP memory budget, CP cores) holding the per-grid-point
//       candidate (memoized per-block MR heaps + estimated cost), shared
//       across grid enumeration, runtime re-optimizations, and
//       submissions of the same program.
//
// Both sides are LRU-bounded and fully thread-safe; hit/miss/eviction
// counts are exported through the obs metrics registry
// ("plan_cache.program_hits", "plan_cache.whatif_hits", ...) and
// cache-miss recompiles are wrapped in tracer spans.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "analysis/dataflow.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "hdfs/file_system.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "yarn/cluster_config.h"

namespace relm {

struct OptimizerOptions;  // core/resource_optimizer.h
class PlanStore;          // below

/// Identity of a submitted program for caching purposes: a 64-bit FNV-1a
/// digest over the script source, the argument bindings, the accumulated
/// size overrides (dynamic recompilation state), and the identity plus
/// metadata fingerprint of the HDFS namespace the program reads from.
/// Any change to inputs or discovered sizes yields a new signature,
/// which is how cached plans are invalidated.
uint64_t ComputeProgramSignature(const MlProgram& program);

/// Signature of the (source, args, inputs) triple before compilation —
/// the compiled-program cache key. Matches ComputeProgramSignature of a
/// freshly compiled program (no size overrides yet). The key covers the
/// hdfs *instance* (not just its metadata fingerprint): cached masters
/// keep a raw pointer to the namespace they compiled against, so an
/// entry must never be reachable from any other — possibly shorter-lived
/// — namespace, however identical its contents.
uint64_t ComputeScriptSignature(const std::string& source,
                                const ScriptArgs& args,
                                const SimulatedHdfs* hdfs);

/// Digest of everything outside the program that what-if costing depends
/// on: the cluster model and the option fields that change per-point
/// verdicts (grids, resolution, pruning, failure rate). Fields that only
/// steer enumeration order or parallelism (num_threads, time budget) are
/// deliberately excluded so serial and parallel runs share entries.
uint64_t ComputeOptimizerContextHash(const ClusterConfig& cc,
                                     const OptimizerOptions& opts);

/// Digest of the *leaf inputs* a script binds: for every argument value
/// that names a registered hdfs path, the path plus its metadata
/// (rows, cols, nnz, format, size). This is the persistence analogue of
/// the whole-namespace fingerprint in ComputeScriptSignature: drift in
/// files the program never reads does not invalidate its artifacts, only
/// drift in its own inputs does (Tundra-style leaf-input signatures).
uint64_t ComputeLeafInputSignature(const ScriptArgs& args,
                                   const SimulatedHdfs* hdfs);

/// Cross-process identity of a (source, args, leaf inputs) triple. Unlike
/// ComputeScriptSignature this excludes the hdfs instance id and the
/// whole-namespace fingerprint, so the same script against identically
/// shaped inputs hashes the same in every process — the key persisted
/// plan artifacts are stored and re-validated under.
uint64_t ComputePortableScriptSignature(const std::string& source,
                                        const ScriptArgs& args,
                                        const SimulatedHdfs* hdfs);

/// Portable signature of a compiled program (same digest as
/// ComputePortableScriptSignature of its source/args/inputs, folded with
/// any accumulated size overrides from dynamic recompilation).
uint64_t ComputePortableProgramSignature(const MlProgram& program);

/// Key of one what-if evaluation: "what does this program cost at CP
/// grid point (cp_heap, cp_cores)?".
struct WhatIfKey {
  uint64_t program_sig = 0;
  uint64_t context_hash = 0;
  int64_t cp_heap = 0;
  int cp_cores = 1;
  /// Cross-process program identity for the persistent artifact store;
  /// 0 means "not persistable". Deliberately excluded from equality and
  /// hashing — in-memory identity stays pinned to the hdfs instance.
  uint64_t portable_sig = 0;

  bool operator==(const WhatIfKey& o) const {
    return program_sig == o.program_sig && context_hash == o.context_hash &&
           cp_heap == o.cp_heap && cp_cores == o.cp_cores;
  }
};

/// Process-independent what-if key used by the persistent artifact
/// store: the portable program signature replaces the instance-pinned
/// one, everything else matches WhatIfKey.
struct PortableWhatIfKey {
  uint64_t portable_sig = 0;
  uint64_t context_hash = 0;
  int64_t cp_heap = 0;
  int cp_cores = 1;
};

class PlanCache {
 public:
  struct Options {
    /// Maximum cached master programs (compiled-program side).
    size_t max_programs = 64;
    /// Maximum what-if entries across all programs.
    size_t max_whatif_entries = 8192;
    /// Run the structural plan-integrity analysis (src/analysis) on
    /// every leader-compiled master before it is published. A master
    /// with error-severity diagnostics is never cached — a single
    /// corrupt entry would otherwise poison every tenant that shares
    /// the cache — and the compile fails with the report instead.
    bool analyze_on_insert = true;
  };

  /// Result of one memoized what-if evaluation: the candidate resource
  /// configuration (with its per-block MR heap vector) and its verdict
  /// inputs, exactly what the optimizer's grid loop produces per point.
  struct CachedCandidate {
    ResourceConfig config;
    double cost = 0.0;
    int pruned_blocks = 0;
    int enumerated_blocks = 0;
  };

  /// Point-in-time counter values (also exported via obs metrics).
  struct Stats {
    int64_t program_hits = 0;
    int64_t program_misses = 0;
    int64_t whatif_hits = 0;
    int64_t whatif_misses = 0;
    int64_t evictions = 0;
    /// Subset of the hits above that were satisfied by the attached
    /// persistent store rather than by prior work in this process: a
    /// leader compile whose portable signature the store vouched for
    /// (store_program_hits), and what-if entries hydrated from disk
    /// (store_whatif_hits). A warm cold-start shows program_misses == 0
    /// with these counters equal to the cold run's miss counts.
    int64_t store_program_hits = 0;
    int64_t store_whatif_hits = 0;

    double WhatIfHitRate() const {
      int64_t total = whatif_hits + whatif_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(whatif_hits) /
                              static_cast<double>(total);
    }
  };

  PlanCache();
  explicit PlanCache(Options opts);

  /// Process-wide instance shared by sessions and job services that do
  /// not bring their own cache.
  static PlanCache& Global();

  /// Compiled-program lookup. On a hit the cached master is deep-copied
  /// for the caller (each job mutates its program during optimization
  /// and simulation, so masters are never handed out directly); on a
  /// miss the script is compiled — inside a "plan_cache.compile_miss"
  /// tracer span — and retained as the new master. Concurrent misses
  /// for the same key coalesce onto one compile: followers wait for the
  /// leader's master and count as hits (exactly one miss per cold key).
  Result<std::unique_ptr<MlProgram>> GetOrCompile(
      const std::string& source, const ScriptArgs& args,
      const SimulatedHdfs* hdfs);

  /// Program-level dataflow summary (liveness, def-use, static peak
  /// bounds — analysis/dataflow.h) of the cached master under
  /// `script_sig` (ComputeScriptSignature). Computed once by the
  /// leader compile and stored alongside the program: the summary is a
  /// pure function of the compiled program, independent of any resource
  /// configuration, so every admission decision and lint over the same
  /// script shares it. nullptr when no master is cached under the key.
  std::shared_ptr<const analysis::DataflowSummary> LookupDataflow(
      uint64_t script_sig) const;

  /// What-if cost cache. Lookups read through to the attached store on
  /// an in-memory miss (a disk hit is promoted into the LRU and counted
  /// as both a whatif_hit and a store_whatif_hit); inserts are written
  /// behind to the store when the key carries a portable signature.
  std::optional<CachedCandidate> LookupWhatIf(const WhatIfKey& key);
  void InsertWhatIf(const WhatIfKey& key, CachedCandidate candidate);

  /// Attaches (or detaches, with nullptr) a persistent artifact store.
  /// The cache shares ownership: sessions may be destroyed in any order
  /// relative to the store they wired in.
  void AttachStore(std::shared_ptr<PlanStore> store);
  std::shared_ptr<PlanStore> store() const;

  Stats stats() const;
  size_t NumPrograms() const;
  size_t NumWhatIfEntries() const;

  /// Drops all entries and zeroes the stats (tests, bench phases). The
  /// attached store, if any, is kept — Clear simulates a process restart
  /// for which the on-disk artifacts are exactly the state that survives.
  void Clear();

 private:
  struct WhatIfKeyHash {
    size_t operator()(const WhatIfKey& k) const {
      uint64_t h = k.program_sig;
      h ^= k.context_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.cp_heap) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.cp_cores) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct ProgramEntry {
    // shared_ptr so a hit can pin the master and clone it outside the
    // cache lock (cloning is a recompile; doing it under mu_ would
    // serialize every concurrent submission).
    std::shared_ptr<MlProgram> master;
    // Dataflow summary of the master (leader-computed; see
    // LookupDataflow). Immutable, shared with lookups.
    std::shared_ptr<const analysis::DataflowSummary> dataflow;
    std::list<uint64_t>::iterator lru_it;
  };
  struct WhatIfEntry {
    CachedCandidate candidate;
    std::list<WhatIfKey>::iterator lru_it;
  };
  // One in-progress compile (see plan_cache.cc). Kept in a side map so
  // concurrent misses for the same key wait for the leader's result
  // instead of each running the full compile.
  struct InFlight;

  // Inserts an already-validated candidate under mu_ without notifying
  // the store (used when promoting a store hit into the LRU).
  void InsertWhatIfLocked(const WhatIfKey& key, CachedCandidate candidate)
      RELM_REQUIRES(mu_);

  Options opts_;
  mutable std::mutex mu_;
  std::shared_ptr<PlanStore> store_ RELM_GUARDED_BY(mu_);
  Stats stats_ RELM_GUARDED_BY(mu_);
  // LRU lists hold keys, most recently used at the front.
  std::list<uint64_t> program_lru_ RELM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, ProgramEntry> programs_ RELM_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_
      RELM_GUARDED_BY(mu_);
  std::list<WhatIfKey> whatif_lru_ RELM_GUARDED_BY(mu_);
  std::unordered_map<WhatIfKey, WhatIfEntry, WhatIfKeyHash> whatif_
      RELM_GUARDED_BY(mu_);
};

/// Persistence hook under PlanCache. Implemented by
/// store::PlanArtifactStore (src/store/) — declared here so core does
/// not depend on the store library. All methods must be thread-safe;
/// the cache calls them outside its own lock, so implementations must
/// not call back into the cache.
class PlanStore {
 public:
  virtual ~PlanStore() = default;

  /// Disk-side what-if lookup. Returns the hydrated candidate when the
  /// store holds a valid entry for the key, nullopt otherwise.
  virtual std::optional<PlanCache::CachedCandidate> LookupWhatIf(
      const PortableWhatIfKey& key) = 0;

  /// Write-behind of a freshly costed grid point.
  virtual void RecordWhatIf(const PortableWhatIfKey& key,
                            const PlanCache::CachedCandidate& candidate) = 0;

  /// True when the store holds a program record for `portable_sig`
  /// whose recorded leaf-input metadata still matches the live
  /// namespace — i.e. a recompile of this script is pure hydration of
  /// previously validated work, not new compilation.
  virtual bool HasValidProgram(uint64_t portable_sig,
                               const SimulatedHdfs* hdfs) = 0;

  /// Records a leader-compiled program: its portable signature plus a
  /// snapshot of the leaf-input metadata it compiled against, so later
  /// processes can detect per-program input drift (incremental
  /// recompilation: only programs whose own inputs drifted lose their
  /// artifacts).
  virtual void RecordProgram(uint64_t portable_sig, const ScriptArgs& args,
                             const SimulatedHdfs* hdfs) = 0;
};

}  // namespace relm

#endif  // RELM_CORE_PLAN_CACHE_H_

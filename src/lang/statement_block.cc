#include "lang/statement_block.h"

#include <algorithm>
#include <sstream>

namespace relm {

const char* BlockKindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kGeneric:
      return "generic";
    case BlockKind::kIf:
      return "if";
    case BlockKind::kWhile:
      return "while";
    case BlockKind::kFor:
      return "for";
  }
  return "?";
}

void CollectExprReads(const Expr& expr, std::set<std::string>* reads) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kParam:
      return;
    case Expr::Kind::kIdent:
      reads->insert(static_cast<const IdentExpr&>(expr).name);
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectExprReads(*b.lhs, reads);
      CollectExprReads(*b.rhs, reads);
      return;
    }
    case Expr::Kind::kUnary:
      CollectExprReads(*static_cast<const UnaryExpr&>(expr).operand, reads);
      return;
    case Expr::Kind::kMatMult: {
      const auto& m = static_cast<const MatMultExpr&>(expr);
      CollectExprReads(*m.lhs, reads);
      CollectExprReads(*m.rhs, reads);
      return;
    }
    case Expr::Kind::kCall: {
      const auto& c = static_cast<const CallExpr&>(expr);
      for (const auto& a : c.args) CollectExprReads(*a.value, reads);
      return;
    }
    case Expr::Kind::kIndex: {
      const auto& ix = static_cast<const IndexExpr&>(expr);
      CollectExprReads(*ix.target, reads);
      for (const Expr* bound :
           {ix.row_lower.get(), ix.row_upper.get(), ix.col_lower.get(),
            ix.col_upper.get()}) {
        if (bound != nullptr) CollectExprReads(*bound, reads);
      }
      return;
    }
  }
}

void CollectReadsWrites(const Statement& stmt, std::set<std::string>* reads,
                        std::set<std::string>* writes) {
  switch (stmt.kind) {
    case Statement::Kind::kAssign: {
      const auto& a = static_cast<const AssignStmt&>(stmt);
      CollectExprReads(*a.rhs, reads);
      if (a.has_left_index) {
        // Partial update: the old contents of the target are read too.
        reads->insert(a.targets[0]);
        for (const Expr* bound :
             {a.li_row_lower.get(), a.li_row_upper.get(),
              a.li_col_lower.get(), a.li_col_upper.get()}) {
          if (bound != nullptr) CollectExprReads(*bound, reads);
        }
      }
      for (const auto& t : a.targets) writes->insert(t);
      return;
    }
    case Statement::Kind::kExpr: {
      const auto& e = static_cast<const ExprStmt&>(stmt);
      CollectExprReads(*e.expr, reads);
      return;
    }
    case Statement::Kind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      CollectExprReads(*s.predicate, reads);
      for (const auto& c : s.then_body) CollectReadsWrites(*c, reads, writes);
      for (const auto& c : s.else_body) CollectReadsWrites(*c, reads, writes);
      return;
    }
    case Statement::Kind::kWhile: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      CollectExprReads(*s.predicate, reads);
      for (const auto& c : s.body) CollectReadsWrites(*c, reads, writes);
      return;
    }
    case Statement::Kind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      CollectExprReads(*s.from, reads);
      CollectExprReads(*s.to, reads);
      if (s.increment) CollectExprReads(*s.increment, reads);
      writes->insert(s.var);
      for (const auto& c : s.body) CollectReadsWrites(*c, reads, writes);
      return;
    }
  }
}

namespace {

/// Builds the nested block structure for a statement sequence.
std::vector<BlockPtr> BuildBlocks(const std::vector<StmtPtr>& stmts,
                                  int* next_id) {
  std::vector<BlockPtr> out;
  BlockPtr current;  // open generic block
  auto flush = [&]() {
    if (current) out.push_back(std::move(current));
  };
  for (const auto& stmt : stmts) {
    switch (stmt->kind) {
      case Statement::Kind::kAssign:
      case Statement::Kind::kExpr: {
        if (!current) {
          current = std::make_unique<StatementBlock>(BlockKind::kGeneric);
          current->set_id((*next_id)++);
          current->set_line(stmt->line);
        }
        current->statements.push_back(stmt.get());
        break;
      }
      case Statement::Kind::kIf: {
        flush();
        const auto& s = static_cast<const IfStmt&>(*stmt);
        auto blk = std::make_unique<StatementBlock>(BlockKind::kIf);
        blk->set_id((*next_id)++);
        blk->set_line(stmt->line);
        blk->control = stmt.get();
        blk->body = BuildBlocks(s.then_body, next_id);
        blk->else_body = BuildBlocks(s.else_body, next_id);
        out.push_back(std::move(blk));
        break;
      }
      case Statement::Kind::kWhile: {
        flush();
        const auto& s = static_cast<const WhileStmt&>(*stmt);
        auto blk = std::make_unique<StatementBlock>(BlockKind::kWhile);
        blk->set_id((*next_id)++);
        blk->set_line(stmt->line);
        blk->control = stmt.get();
        blk->body = BuildBlocks(s.body, next_id);
        out.push_back(std::move(blk));
        break;
      }
      case Statement::Kind::kFor: {
        flush();
        const auto& s = static_cast<const ForStmt&>(*stmt);
        auto blk = std::make_unique<StatementBlock>(BlockKind::kFor);
        blk->set_id((*next_id)++);
        blk->set_line(stmt->line);
        blk->control = stmt.get();
        blk->body = BuildBlocks(s.body, next_id);
        out.push_back(std::move(blk));
        break;
      }
    }
  }
  flush();
  return out;
}

using VarSet = std::set<std::string>;

VarSet Union(const VarSet& a, const VarSet& b) {
  VarSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

VarSet Minus(const VarSet& a, const VarSet& b) {
  VarSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

/// Fills read/updated sets of a block (transitively through children).
void ComputeReadUpdated(StatementBlock* blk) {
  if (blk->kind() == BlockKind::kGeneric) {
    for (const Statement* s : blk->statements) {
      CollectReadsWrites(*s, &blk->read, &blk->updated);
    }
    return;
  }
  CollectReadsWrites(*blk->control, &blk->read, &blk->updated);
  for (auto& c : blk->body) {
    ComputeReadUpdated(c.get());
  }
  for (auto& c : blk->else_body) {
    ComputeReadUpdated(c.get());
  }
}

VarSet AnalyzeSeq(std::vector<BlockPtr>& blocks, const VarSet& live_out);

/// Computes live_in of one block given its live_out; records both.
VarSet AnalyzeBlock(StatementBlock* blk, const VarSet& live_out) {
  blk->live_out = live_out;
  switch (blk->kind()) {
    case BlockKind::kGeneric: {
      // Backward pass over statements.
      VarSet live = live_out;
      for (auto it = blk->statements.rbegin(); it != blk->statements.rend();
           ++it) {
        VarSet reads;
        VarSet writes;
        CollectReadsWrites(**it, &reads, &writes);
        live = Union(Minus(live, writes), reads);
      }
      blk->live_in = live;
      return live;
    }
    case BlockKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(*blk->control);
      VarSet pred_reads;
      CollectExprReads(*s.predicate, &pred_reads);
      VarSet then_in = AnalyzeSeq(blk->body, live_out);
      VarSet else_in = blk->else_body.empty()
                           ? live_out
                           : AnalyzeSeq(blk->else_body, live_out);
      blk->live_in = Union(pred_reads, Union(then_in, else_in));
      return blk->live_in;
    }
    case BlockKind::kWhile:
    case BlockKind::kFor: {
      VarSet pred_reads;
      if (blk->kind() == BlockKind::kWhile) {
        const auto& s = static_cast<const WhileStmt&>(*blk->control);
        CollectExprReads(*s.predicate, &pred_reads);
      } else {
        const auto& s = static_cast<const ForStmt&>(*blk->control);
        CollectExprReads(*s.from, &pred_reads);
        CollectExprReads(*s.to, &pred_reads);
        if (s.increment) CollectExprReads(*s.increment, &pred_reads);
      }
      // Fixpoint over the back edge: everything live at loop entry is also
      // live at the end of the body.
      VarSet exit_live = live_out;
      VarSet live_in;
      for (int iter = 0; iter < 8; ++iter) {
        VarSet body_in = AnalyzeSeq(blk->body, exit_live);
        VarSet new_in = Union(pred_reads, Union(body_in, live_out));
        if (new_in == live_in) break;
        live_in = new_in;
        exit_live = Union(live_out, live_in);
      }
      blk->live_in = live_in;
      return live_in;
    }
  }
  return live_out;
}

VarSet AnalyzeSeq(std::vector<BlockPtr>& blocks, const VarSet& live_out) {
  VarSet live = live_out;
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    live = AnalyzeBlock(it->get(), live);
  }
  return live;
}

}  // namespace

int ProgramBlocks::TotalBlocks() const {
  struct Counter {
    static int Count(const std::vector<BlockPtr>& blocks) {
      int n = 0;
      for (const auto& b : blocks) {
        n += 1 + Count(b->body) + Count(b->else_body);
      }
      return n;
    }
  };
  int n = Counter::Count(main);
  for (const auto& [name, blocks] : functions) n += Counter::Count(blocks);
  return n;
}

std::string StatementBlock::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad << "#" << id_ << " " << BlockKindName(kind_);
  if (kind_ == BlockKind::kGeneric) {
    os << " (" << statements.size() << " stmts)";
  }
  os << "\n";
  for (const auto& c : body) os << c->ToString(indent + 1);
  if (!else_body.empty()) {
    os << pad << "else:\n";
    for (const auto& c : else_body) os << c->ToString(indent + 1);
  }
  return os.str();
}

std::string ProgramBlocks::ToString() const {
  std::ostringstream os;
  for (const auto& b : main) os << b->ToString();
  for (const auto& [name, blocks] : functions) {
    os << "function " << name << ":\n";
    for (const auto& b : blocks) os << b->ToString(1);
  }
  return os.str();
}

Result<ProgramBlocks> BuildProgramBlocks(const DmlProgram& program) {
  ProgramBlocks out;
  int next_id = 0;
  out.main = BuildBlocks(program.statements, &next_id);
  for (const auto& [name, fn] : program.functions) {
    out.functions[name] = BuildBlocks(fn.body, &next_id);
  }
  // Read/updated sets.
  for (auto& b : out.main) ComputeReadUpdated(b.get());
  for (auto& [name, blocks] : out.functions) {
    for (auto& b : blocks) ComputeReadUpdated(b.get());
  }
  // Liveness: nothing is live at program end except persistent writes,
  // which read their inputs inside the final blocks anyway.
  AnalyzeSeq(out.main, {});
  for (auto& [name, fn_blocks] : out.functions) {
    auto it = program.functions.find(name);
    VarSet returns;
    for (const auto& r : it->second.returns) returns.insert(r.name);
    AnalyzeSeq(fn_blocks, returns);
  }
  return out;
}

}  // namespace relm

#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace relm {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kDollar:
      return "$parameter";
    case TokenKind::kIf:
      return "'if'";
    case TokenKind::kElse:
      return "'else'";
    case TokenKind::kWhile:
      return "'while'";
    case TokenKind::kFor:
      return "'for'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kFunction:
      return "'function'";
    case TokenKind::kReturn:
      return "'return'";
    case TokenKind::kTrue:
      return "'TRUE'";
    case TokenKind::kFalse:
      return "'FALSE'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kArrow:
      return "'<-'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kMatMult:
      return "'%*%'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kLessEq:
      return "'<='";
    case TokenKind::kGreater:
      return "'>'";
    case TokenKind::kGreaterEq:
      return "'>='";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNotEq:
      return "'!='";
    case TokenKind::kAnd:
      return "'&'";
    case TokenKind::kOr:
      return "'|'";
    case TokenKind::kNot:
      return "'!'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"if", TokenKind::kIf},         {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile},   {"for", TokenKind::kFor},
      {"in", TokenKind::kIn},         {"function", TokenKind::kFunction},
      {"return", TokenKind::kReturn}, {"TRUE", TokenKind::kTrue},
      {"FALSE", TokenKind::kFalse},
  };
  return *kMap;
}

Status LexError(int line, int column, const std::string& msg) {
  std::ostringstream os;
  os << "line " << line << ":" << column << ": " << msg;
  return Status::ParseError(os.str());
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  int col = 1;
  auto advance = [&](size_t n = 1) {
    for (size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](size_t off = 0) -> char {
    return i + off < source.size() ? source[i + off] : '\0';
  };
  auto emit = [&](TokenKind kind, std::string text, int tl, int tc) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tl;
    t.column = tc;
    tokens.push_back(std::move(t));
  };

  while (i < source.size()) {
    char c = peek();
    int tl = line;
    int tc = col;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#') {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_' || peek() == '.')) {
        ident.push_back(peek());
        advance();
      }
      auto kw = Keywords().find(ident);
      if (kw != Keywords().end()) {
        emit(kw->second, ident, tl, tc);
      } else {
        emit(TokenKind::kIdent, ident, tl, tc);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string num;
      bool seen_exp = false;
      while (i < source.size()) {
        char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d)) || d == '.') {
          num.push_back(d);
          advance();
        } else if ((d == 'e' || d == 'E') && !seen_exp) {
          seen_exp = true;
          num.push_back(d);
          advance();
          if (peek() == '+' || peek() == '-') {
            num.push_back(peek());
            advance();
          }
        } else {
          break;
        }
      }
      char* end = nullptr;
      double v = std::strtod(num.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return LexError(tl, tc, "malformed number '" + num + "'");
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = num;
      t.number = v;
      t.line = tl;
      t.column = tc;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      advance();
      std::string s;
      while (i < source.size() && peek() != '"') {
        if (peek() == '\\' && peek(1) == '"') {
          s.push_back('"');
          advance(2);
        } else {
          s.push_back(peek());
          advance();
        }
      }
      if (i >= source.size()) {
        return LexError(tl, tc, "unterminated string literal");
      }
      advance();  // closing quote
      emit(TokenKind::kString, s, tl, tc);
      continue;
    }
    if (c == '$') {
      advance();
      std::string name;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        name.push_back(peek());
        advance();
      }
      if (name.empty()) {
        return LexError(tl, tc, "'$' must be followed by a parameter name");
      }
      emit(TokenKind::kDollar, name, tl, tc);
      continue;
    }
    if (c == '%') {
      if (peek(1) == '*' && peek(2) == '%') {
        advance(3);
        emit(TokenKind::kMatMult, "%*%", tl, tc);
        continue;
      }
      return LexError(tl, tc, "unknown operator starting with '%'");
    }
    auto two = [&](char second, TokenKind k2, TokenKind k1,
                   const char* t2, const char* t1) {
      if (peek(1) == second) {
        advance(2);
        emit(k2, t2, tl, tc);
      } else {
        advance();
        emit(k1, t1, tl, tc);
      }
    };
    switch (c) {
      case '=':
        two('=', TokenKind::kEq, TokenKind::kAssign, "==", "=");
        continue;
      case '<':
        if (peek(1) == '-') {
          advance(2);
          emit(TokenKind::kArrow, "<-", tl, tc);
        } else {
          two('=', TokenKind::kLessEq, TokenKind::kLess, "<=", "<");
        }
        continue;
      case '>':
        two('=', TokenKind::kGreaterEq, TokenKind::kGreater, ">=", ">");
        continue;
      case '!':
        two('=', TokenKind::kNotEq, TokenKind::kNot, "!=", "!");
        continue;
      case '+':
        advance();
        emit(TokenKind::kPlus, "+", tl, tc);
        continue;
      case '-':
        advance();
        emit(TokenKind::kMinus, "-", tl, tc);
        continue;
      case '*':
        advance();
        emit(TokenKind::kStar, "*", tl, tc);
        continue;
      case '/':
        advance();
        emit(TokenKind::kSlash, "/", tl, tc);
        continue;
      case '^':
        advance();
        emit(TokenKind::kCaret, "^", tl, tc);
        continue;
      case '&':
        advance();
        emit(TokenKind::kAnd, "&", tl, tc);
        continue;
      case '|':
        advance();
        emit(TokenKind::kOr, "|", tl, tc);
        continue;
      case '(':
        advance();
        emit(TokenKind::kLParen, "(", tl, tc);
        continue;
      case ')':
        advance();
        emit(TokenKind::kRParen, ")", tl, tc);
        continue;
      case '{':
        advance();
        emit(TokenKind::kLBrace, "{", tl, tc);
        continue;
      case '}':
        advance();
        emit(TokenKind::kRBrace, "}", tl, tc);
        continue;
      case '[':
        advance();
        emit(TokenKind::kLBracket, "[", tl, tc);
        continue;
      case ']':
        advance();
        emit(TokenKind::kRBracket, "]", tl, tc);
        continue;
      case ',':
        advance();
        emit(TokenKind::kComma, ",", tl, tc);
        continue;
      case ';':
        advance();
        emit(TokenKind::kSemicolon, ";", tl, tc);
        continue;
      case ':':
        advance();
        emit(TokenKind::kColon, ":", tl, tc);
        continue;
      default:
        return LexError(tl, tc,
                        std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  tokens.push_back(end);
  return tokens;
}

}  // namespace relm

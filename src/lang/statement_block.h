#ifndef RELM_LANG_STATEMENT_BLOCK_H_
#define RELM_LANG_STATEMENT_BLOCK_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"

namespace relm {

/// Kinds of statement blocks in the program-block hierarchy (the control
/// structure of the script defines the blocks, like in SystemML).
enum class BlockKind { kGeneric, kIf, kWhile, kFor };

const char* BlockKindName(BlockKind kind);

/// One statement block. Generic blocks hold consecutive straight-line
/// statements (one HOP DAG each); control blocks hold their predicate and
/// nested child blocks. Pointers into the AST are non-owning: the parsed
/// DmlProgram must outlive its block structure.
class StatementBlock {
 public:
  explicit StatementBlock(BlockKind kind) : kind_(kind) {}

  BlockKind kind() const { return kind_; }
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }
  int line() const { return line_; }
  void set_line(int line) { line_ = line; }

  /// Statements of a generic block.
  std::vector<const Statement*> statements;

  /// The controlling statement (If/While/For) for control blocks.
  const Statement* control = nullptr;

  /// Nested blocks: loop body or if-then body.
  std::vector<std::unique_ptr<StatementBlock>> body;
  /// If-else body (kIf only).
  std::vector<std::unique_ptr<StatementBlock>> else_body;

  /// Live-variable analysis results (variable names).
  std::set<std::string> live_in;
  std::set<std::string> live_out;
  /// Variables (re-)assigned within this block (transitively for loops).
  std::set<std::string> updated;
  /// Variables read within this block (transitively).
  std::set<std::string> read;

  /// True for blocks that compile to a single HOP DAG (generic blocks).
  bool IsLastLevel() const { return kind_ == BlockKind::kGeneric; }

  std::string ToString(int indent = 0) const;

 private:
  BlockKind kind_;
  int id_ = -1;
  int line_ = 0;
};

using BlockPtr = std::unique_ptr<StatementBlock>;

/// The block structure of a whole program: top-level blocks plus one
/// block list per user-defined function.
struct ProgramBlocks {
  std::vector<BlockPtr> main;
  std::map<std::string, std::vector<BlockPtr>> functions;

  /// Total number of blocks, counted recursively (Table 1's "#Blocks").
  int TotalBlocks() const;

  std::string ToString() const;
};

/// Builds the statement-block hierarchy for a parsed program and runs
/// live-variable analysis (live-in/live-out/updated/read per block).
/// `result_vars` lists variables that must stay live at program end
/// (outputs of write() calls are detected automatically).
Result<ProgramBlocks> BuildProgramBlocks(const DmlProgram& program);

/// Variables read / written by a single statement (AST walk).
void CollectReadsWrites(const Statement& stmt, std::set<std::string>* reads,
                        std::set<std::string>* writes);

/// Variables read by an expression.
void CollectExprReads(const Expr& expr, std::set<std::string>* reads);

}  // namespace relm

#endif  // RELM_LANG_STATEMENT_BLOCK_H_

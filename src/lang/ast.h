#ifndef RELM_LANG_AST_H_
#define RELM_LANG_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "matrix/op_types.h"

namespace relm {

/// Data type of an expression: a matrix or a scalar value.
enum class DataType { kUnknown, kMatrix, kScalar };

/// Value type of scalar expressions and matrix cells.
enum class ValueType { kUnknown, kDouble, kInt, kBoolean, kString };

const char* DataTypeName(DataType dt);
const char* ValueTypeName(ValueType vt);

/// ---------------------------------------------------------------------
/// Expressions
/// ---------------------------------------------------------------------

struct Expr {
  enum class Kind {
    kLiteral,
    kIdent,
    kParam,    // $name script parameter
    kBinary,   // cell-wise / scalar binary op
    kUnary,    // -x, !x
    kMatMult,  // %*%
    kCall,     // builtin or user function
    kIndex,    // X[a:b, c:d]
  };

  explicit Expr(Kind k) : kind(k) {}
  virtual ~Expr() = default;

  Kind kind;
  int line = 0;
  int column = 0;
  /// Filled in by the validator.
  DataType data_type = DataType::kUnknown;
  ValueType value_type = ValueType::kUnknown;

  /// Pretty-prints the expression (round-trippable for simple cases).
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  LiteralExpr() : Expr(Kind::kLiteral) {}
  ValueType literal_type = ValueType::kDouble;
  double number = 0.0;     // kDouble / kInt
  bool boolean = false;    // kBoolean
  std::string str;         // kString

  static ExprPtr Number(double v);
  static ExprPtr Bool(bool v);
  static ExprPtr String(std::string v);

  std::string ToString() const override;
};

struct IdentExpr : Expr {
  IdentExpr() : Expr(Kind::kIdent) {}
  std::string name;
  std::string ToString() const override { return name; }
};

struct ParamExpr : Expr {
  ParamExpr() : Expr(Kind::kParam) {}
  std::string name;
  std::string ToString() const override { return "$" + name; }
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(Kind::kBinary) {}
  BinOp op = BinOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
  std::string ToString() const override;
};

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(Kind::kUnary) {}
  UnOp op = UnOp::kNeg;  // kNeg or kNot from the parser
  ExprPtr operand;
  std::string ToString() const override;
};

struct MatMultExpr : Expr {
  MatMultExpr() : Expr(Kind::kMatMult) {}
  ExprPtr lhs;
  ExprPtr rhs;
  std::string ToString() const override;
};

/// A (possibly named) call argument: `rows=n` or a plain positional expr.
struct CallArg {
  std::string name;  // empty for positional
  ExprPtr value;
};

struct CallExpr : Expr {
  CallExpr() : Expr(Kind::kCall) {}
  std::string function;  // builtin ("sum", "t", ...) or user function
  std::vector<CallArg> args;

  /// Returns the positional argument at `idx` or nullptr.
  const Expr* Positional(size_t idx) const;
  /// Returns the named argument or nullptr.
  const Expr* Named(const std::string& name) const;

  std::string ToString() const override;
};

/// Right indexing X[rl:ru, cl:cu]; absent bounds mean full range.
struct IndexExpr : Expr {
  IndexExpr() : Expr(Kind::kIndex) {}
  ExprPtr target;
  ExprPtr row_lower;  // may be null (full range / all rows)
  ExprPtr row_upper;  // null with non-null lower means single row
  ExprPtr col_lower;
  ExprPtr col_upper;
  std::string ToString() const override;
};

/// ---------------------------------------------------------------------
/// Statements
/// ---------------------------------------------------------------------

struct Statement {
  enum class Kind {
    kAssign,
    kIf,
    kWhile,
    kFor,
    kExpr,  // expression statement: print(...), write(...)
  };

  explicit Statement(Kind k) : kind(k) {}
  virtual ~Statement() = default;

  Kind kind;
  int line = 0;
  int column = 0;

  virtual std::string ToString() const = 0;
};

using StmtPtr = std::unique_ptr<Statement>;

struct AssignStmt : Statement {
  AssignStmt() : Statement(Kind::kAssign) {}
  /// One target normally; several for multi-return calls `[a, b] = f(...)`.
  std::vector<std::string> targets;
  ExprPtr rhs;

  /// Left indexing `X[rl:ru, cl:cu] = expr`: partial update of the
  /// target. Bound semantics match IndexExpr (null = full range, lower
  /// without upper = single row/column).
  bool has_left_index = false;
  ExprPtr li_row_lower;
  ExprPtr li_row_upper;
  ExprPtr li_col_lower;
  ExprPtr li_col_upper;

  std::string ToString() const override;
};

struct IfStmt : Statement {
  IfStmt() : Statement(Kind::kIf) {}
  ExprPtr predicate;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  std::string ToString() const override;
};

struct WhileStmt : Statement {
  WhileStmt() : Statement(Kind::kWhile) {}
  ExprPtr predicate;
  std::vector<StmtPtr> body;
  std::string ToString() const override;
};

struct ForStmt : Statement {
  ForStmt() : Statement(Kind::kFor) {}
  std::string var;
  ExprPtr from;
  ExprPtr to;
  ExprPtr increment;  // may be null (defaults to 1)
  std::vector<StmtPtr> body;
  std::string ToString() const override;
};

struct ExprStmt : Statement {
  ExprStmt() : Statement(Kind::kExpr) {}
  ExprPtr expr;
  std::string ToString() const override;
};

/// ---------------------------------------------------------------------
/// Functions and program
/// ---------------------------------------------------------------------

struct FunctionParam {
  std::string name;
  DataType data_type = DataType::kScalar;
  ValueType value_type = ValueType::kDouble;
};

struct FunctionDef {
  std::string name;
  std::vector<FunctionParam> params;
  std::vector<FunctionParam> returns;
  std::vector<StmtPtr> body;
};

/// A parsed DML program: top-level statements plus named functions.
struct DmlProgram {
  std::vector<StmtPtr> statements;
  std::map<std::string, FunctionDef> functions;
  /// Number of non-empty, non-comment source lines (Table 1 statistic).
  int source_lines = 0;
};

}  // namespace relm

#endif  // RELM_LANG_AST_H_

#ifndef RELM_LANG_LEXER_H_
#define RELM_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace relm {

/// Token kinds of the DML subset (R-like syntax).
enum class TokenKind {
  kEnd,
  kIdent,       // X, grad, nrow
  kNumber,      // 1, 0.001, 1e-9
  kString,      // "text"
  kDollar,      // $name (script-level parameter)
  // Keywords.
  kIf,
  kElse,
  kWhile,
  kFor,
  kIn,
  kFunction,
  kReturn,
  kTrue,
  kFalse,
  // Operators and punctuation.
  kAssign,      // =
  kArrow,       // <- (alias for =)
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,       // ^
  kMatMult,     // %*%
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEq,          // ==
  kNotEq,       // !=
  kAnd,         // &
  kOr,          // |
  kNot,         // !
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
};

/// Name for diagnostics ("'%*%'", "identifier", ...).
const char* TokenKindName(TokenKind kind);

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // identifier/string/number spelling
  double number = 0.0;   // value when kind == kNumber
  int line = 0;
  int column = 0;
};

/// Tokenizes a DML script. Comments run from '#' to end of line.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace relm

#endif  // RELM_LANG_LEXER_H_

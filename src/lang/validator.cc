#include "lang/validator.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace relm {
namespace {

/// Builtins grouped by their typing rule.
enum class BuiltinRule {
  kMatrixToScalar,    // sum, mean, trace, nrow, ncol, as.scalar
  kMatrixToMatrix,    // t, rowSums, colSums, diag, round-on-matrix...
  kElementwise,       // abs/sqrt/exp/log/...: matrix->matrix, scalar->scalar
  kTwoMatrix,         // solve(A,b), table(v1,v2), cbind/append(A,B)
  kMinMax,            // min/max: all-scalar -> scalar, else matrix
  kPpred,             // ppred(X, s, "op") -> matrix
  kMatrixGen,         // matrix(v, rows, cols), rand(...) -> matrix
  kSeq,               // seq(a,b[,c]) -> matrix
  kRead,              // read(path) -> matrix
  kCast,              // as.matrix / as.double / as.integer
  kVoid,              // print, write, stop
};

const std::unordered_map<std::string, BuiltinRule>& Builtins() {
  static const auto* kMap = new std::unordered_map<std::string, BuiltinRule>{
      {"sum", BuiltinRule::kMatrixToScalar},
      {"mean", BuiltinRule::kMatrixToScalar},
      {"trace", BuiltinRule::kMatrixToScalar},
      {"nrow", BuiltinRule::kMatrixToScalar},
      {"ncol", BuiltinRule::kMatrixToScalar},
      {"as.scalar", BuiltinRule::kMatrixToScalar},
      {"castAsScalar", BuiltinRule::kMatrixToScalar},
      {"t", BuiltinRule::kMatrixToMatrix},
      {"rowSums", BuiltinRule::kMatrixToMatrix},
      {"colSums", BuiltinRule::kMatrixToMatrix},
      {"rowMeans", BuiltinRule::kMatrixToMatrix},
      {"colMeans", BuiltinRule::kMatrixToMatrix},
      {"rowMaxs", BuiltinRule::kMatrixToMatrix},
      {"colMaxs", BuiltinRule::kMatrixToMatrix},
      {"diag", BuiltinRule::kMatrixToMatrix},
      {"abs", BuiltinRule::kElementwise},
      {"sqrt", BuiltinRule::kElementwise},
      {"exp", BuiltinRule::kElementwise},
      {"log", BuiltinRule::kElementwise},
      {"round", BuiltinRule::kElementwise},
      {"floor", BuiltinRule::kElementwise},
      {"ceil", BuiltinRule::kElementwise},
      {"sign", BuiltinRule::kElementwise},
      {"solve", BuiltinRule::kTwoMatrix},
      {"table", BuiltinRule::kTwoMatrix},
      {"cbind", BuiltinRule::kTwoMatrix},
      {"append", BuiltinRule::kTwoMatrix},
      {"min", BuiltinRule::kMinMax},
      {"max", BuiltinRule::kMinMax},
      {"ppred", BuiltinRule::kPpred},
      {"matrix", BuiltinRule::kMatrixGen},
      {"rand", BuiltinRule::kMatrixGen},
      {"seq", BuiltinRule::kSeq},
      {"read", BuiltinRule::kRead},
      {"as.matrix", BuiltinRule::kCast},
      {"as.double", BuiltinRule::kCast},
      {"as.integer", BuiltinRule::kCast},
      {"print", BuiltinRule::kVoid},
      {"write", BuiltinRule::kVoid},
      {"stop", BuiltinRule::kVoid},
  };
  return *kMap;
}

Status ErrorAt(int line, int column, const std::string& msg) {
  std::ostringstream os;
  os << "line " << line;
  if (column > 0) os << ", col " << column;
  os << ": " << msg;
  return Status::ValidationError(os.str());
}

Status ErrorAt(const Statement& stmt, const std::string& msg) {
  return ErrorAt(stmt.line, stmt.column, msg);
}

Status ErrorAt(const Expr& e, const std::string& msg) {
  return ErrorAt(e.line, e.column, msg);
}

using SymbolTable = std::map<std::string, VarType>;

/// Stateful validator walking blocks in order with a symbol table.
class Validator {
 public:
  explicit Validator(DmlProgram* program) : program_(program) {}

  Status Run() {
    // Validate each function body once against its declared signature.
    for (auto& [name, fn] : program_->functions) {
      SymbolTable table;
      for (const auto& p : fn.params) {
        table[p.name] = VarType{p.data_type, p.value_type};
      }
      RELM_RETURN_IF_ERROR(ValidateStatements(fn.body, &table));
      for (const auto& r : fn.returns) {
        auto it = table.find(r.name);
        if (it == table.end()) {
          return Status::ValidationError("function '" + name +
                                         "' never assigns return value '" +
                                         r.name + "'");
        }
      }
    }
    SymbolTable table;
    return ValidateStatements(program_->statements, &table);
  }

 private:
  Status ValidateStatements(const std::vector<StmtPtr>& stmts,
                            SymbolTable* table) {
    for (const auto& stmt : stmts) {
      RELM_RETURN_IF_ERROR(ValidateStatement(*stmt, table));
    }
    return Status::OK();
  }

  Status ValidateStatement(const Statement& stmt, SymbolTable* table) {
    switch (stmt.kind) {
      case Statement::Kind::kAssign: {
        auto& a = const_cast<AssignStmt&>(static_cast<const AssignStmt&>(stmt));
        RELM_RETURN_IF_ERROR(ValidateExpr(a.rhs.get(), *table));
        if (a.has_left_index) {
          auto tit = table->find(a.targets[0]);
          if (tit == table->end() ||
              tit->second.data_type != DataType::kMatrix) {
            return ErrorAt(stmt, "left indexing requires an "
                                      "existing matrix variable");
          }
          for (Expr* bound :
               {a.li_row_lower.get(), a.li_row_upper.get(),
                a.li_col_lower.get(), a.li_col_upper.get()}) {
            if (bound == nullptr) continue;
            RELM_RETURN_IF_ERROR(ValidateExpr(bound, *table));
            if (bound->data_type == DataType::kMatrix) {
              return ErrorAt(stmt, "index bounds must be scalars");
            }
          }
          return Status::OK();  // target keeps its matrix type
        }
        if (a.targets.size() == 1) {
          (*table)[a.targets[0]] =
              VarType{a.rhs->data_type, a.rhs->value_type};
        } else {
          // Multi-assignment requires a user-function call.
          if (a.rhs->kind != Expr::Kind::kCall) {
            return ErrorAt(stmt,
                           "multi-assignment requires a function call");
          }
          const auto& call = static_cast<const CallExpr&>(*a.rhs);
          auto fit = program_->functions.find(call.function);
          if (fit == program_->functions.end()) {
            return ErrorAt(stmt, "multi-assignment from unknown "
                                      "function '" + call.function + "'");
          }
          if (fit->second.returns.size() != a.targets.size()) {
            return ErrorAt(stmt, "function '" + call.function +
                                      "' returns " +
                                      std::to_string(
                                          fit->second.returns.size()) +
                                      " values");
          }
          for (size_t i = 0; i < a.targets.size(); ++i) {
            const auto& r = fit->second.returns[i];
            (*table)[a.targets[i]] = VarType{r.data_type, r.value_type};
          }
        }
        return Status::OK();
      }
      case Statement::Kind::kExpr: {
        const auto& e = static_cast<const ExprStmt&>(stmt);
        return ValidateExpr(e.expr.get(), *table);
      }
      case Statement::Kind::kIf: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        RELM_RETURN_IF_ERROR(ValidateExpr(s.predicate.get(), *table));
        SymbolTable then_table = *table;
        SymbolTable else_table = *table;
        RELM_RETURN_IF_ERROR(ValidateStatements(s.then_body, &then_table));
        RELM_RETURN_IF_ERROR(ValidateStatements(s.else_body, &else_table));
        // Merge: variables defined in both branches (or pre-existing)
        // survive; conflicting data types degrade to unknown.
        MergeTables(then_table, else_table, table);
        return Status::OK();
      }
      case Statement::Kind::kWhile: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        RELM_RETURN_IF_ERROR(ValidateExpr(s.predicate.get(), *table));
        // Two passes so types assigned late in the body are visible to
        // uses early in the body on the second iteration.
        RELM_RETURN_IF_ERROR(ValidateStatements(s.body, table));
        RELM_RETURN_IF_ERROR(ValidateExpr(s.predicate.get(), *table));
        return ValidateStatements(s.body, table);
      }
      case Statement::Kind::kFor: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        RELM_RETURN_IF_ERROR(ValidateExpr(s.from.get(), *table));
        RELM_RETURN_IF_ERROR(ValidateExpr(s.to.get(), *table));
        if (s.increment) {
          RELM_RETURN_IF_ERROR(ValidateExpr(s.increment.get(), *table));
        }
        (*table)[s.var] = VarType{DataType::kScalar, ValueType::kInt};
        RELM_RETURN_IF_ERROR(ValidateStatements(s.body, table));
        return ValidateStatements(s.body, table);
      }
    }
    return Status::OK();
  }

  static void MergeTables(const SymbolTable& a, const SymbolTable& b,
                          SymbolTable* out) {
    SymbolTable merged;
    for (const auto& [name, ta] : a) {
      auto it = b.find(name);
      if (it == b.end()) {
        merged[name] = ta;  // defined in one branch only: keep (may be
                            // dead after the if; liveness decides)
        continue;
      }
      if (it->second.data_type == ta.data_type) {
        merged[name] = ta;
      } else {
        merged[name] = VarType{DataType::kUnknown, ValueType::kUnknown};
      }
    }
    for (const auto& [name, tb] : b) {
      if (merged.find(name) == merged.end()) merged[name] = tb;
    }
    *out = std::move(merged);
  }

  Status ValidateExpr(Expr* expr, const SymbolTable& table) {
    switch (expr->kind) {
      case Expr::Kind::kLiteral: {
        auto* lit = static_cast<LiteralExpr*>(expr);
        expr->data_type = DataType::kScalar;
        expr->value_type = lit->literal_type;
        return Status::OK();
      }
      case Expr::Kind::kParam: {
        auto* p = static_cast<ParamExpr*>(expr);
        return ErrorAt(*expr, "script parameter $" + p->name +
                                   " was not supplied and has no default");
      }
      case Expr::Kind::kIdent: {
        auto* id = static_cast<IdentExpr*>(expr);
        auto it = table.find(id->name);
        if (it == table.end()) {
          return ErrorAt(*expr,
                         "undefined variable '" + id->name + "'");
        }
        expr->data_type = it->second.data_type;
        expr->value_type = it->second.value_type;
        return Status::OK();
      }
      case Expr::Kind::kBinary: {
        auto* b = static_cast<BinaryExpr*>(expr);
        RELM_RETURN_IF_ERROR(ValidateExpr(b->lhs.get(), table));
        RELM_RETURN_IF_ERROR(ValidateExpr(b->rhs.get(), table));
        // String concatenation via '+'.
        if (b->op == BinOp::kAdd &&
            (b->lhs->value_type == ValueType::kString ||
             b->rhs->value_type == ValueType::kString)) {
          expr->data_type = DataType::kScalar;
          expr->value_type = ValueType::kString;
          return Status::OK();
        }
        bool lhs_matrix = b->lhs->data_type == DataType::kMatrix;
        bool rhs_matrix = b->rhs->data_type == DataType::kMatrix;
        expr->data_type = (lhs_matrix || rhs_matrix) ? DataType::kMatrix
                                                     : DataType::kScalar;
        expr->value_type = IsComparison(b->op) && !lhs_matrix && !rhs_matrix
                               ? ValueType::kBoolean
                               : ValueType::kDouble;
        return Status::OK();
      }
      case Expr::Kind::kUnary: {
        auto* u = static_cast<UnaryExpr*>(expr);
        RELM_RETURN_IF_ERROR(ValidateExpr(u->operand.get(), table));
        expr->data_type = u->operand->data_type;
        expr->value_type = u->op == UnOp::kNot ? ValueType::kBoolean
                                               : u->operand->value_type;
        return Status::OK();
      }
      case Expr::Kind::kMatMult: {
        auto* m = static_cast<MatMultExpr*>(expr);
        RELM_RETURN_IF_ERROR(ValidateExpr(m->lhs.get(), table));
        RELM_RETURN_IF_ERROR(ValidateExpr(m->rhs.get(), table));
        if (m->lhs->data_type != DataType::kMatrix ||
            m->rhs->data_type != DataType::kMatrix) {
          return ErrorAt(*expr, "%*% requires matrix operands");
        }
        expr->data_type = DataType::kMatrix;
        expr->value_type = ValueType::kDouble;
        return Status::OK();
      }
      case Expr::Kind::kIndex: {
        auto* ix = static_cast<IndexExpr*>(expr);
        RELM_RETURN_IF_ERROR(ValidateExpr(ix->target.get(), table));
        if (ix->target->data_type != DataType::kMatrix) {
          return ErrorAt(*expr, "indexing requires a matrix");
        }
        for (Expr* bound : {ix->row_lower.get(), ix->row_upper.get(),
                            ix->col_lower.get(), ix->col_upper.get()}) {
          if (bound != nullptr) {
            RELM_RETURN_IF_ERROR(ValidateExpr(bound, table));
            if (bound->data_type == DataType::kMatrix) {
              return ErrorAt(*expr, "index bounds must be scalars");
            }
          }
        }
        expr->data_type = DataType::kMatrix;
        expr->value_type = ValueType::kDouble;
        return Status::OK();
      }
      case Expr::Kind::kCall:
        return ValidateCall(static_cast<CallExpr*>(expr), table);
    }
    return Status::OK();
  }

  Status ValidateCall(CallExpr* call, const SymbolTable& table) {
    for (auto& arg : call->args) {
      RELM_RETURN_IF_ERROR(ValidateExpr(arg.value.get(), table));
    }
    // User-defined functions.
    auto fit = program_->functions.find(call->function);
    if (fit != program_->functions.end()) {
      const FunctionDef& fn = fit->second;
      if (call->args.size() != fn.params.size()) {
        return ErrorAt(*call, "function '" + call->function +
                                   "' expects " +
                                   std::to_string(fn.params.size()) +
                                   " arguments");
      }
      if (fn.returns.empty()) {
        return ErrorAt(*call,
                       "function '" + call->function + "' has no returns");
      }
      call->data_type = fn.returns[0].data_type;
      call->value_type = fn.returns[0].value_type;
      return Status::OK();
    }
    auto bit = Builtins().find(call->function);
    if (bit == Builtins().end()) {
      return ErrorAt(*call,
                     "unknown function '" + call->function + "'");
    }
    auto require_args = [&](size_t lo, size_t hi) -> Status {
      if (call->args.size() < lo || call->args.size() > hi) {
        return ErrorAt(*call,
                       "wrong number of arguments to '" + call->function +
                       "'");
      }
      return Status::OK();
    };
    auto require_matrix = [&](size_t idx) -> Status {
      if (call->args[idx].value->data_type != DataType::kMatrix) {
        return ErrorAt(*call, "argument " + std::to_string(idx + 1) +
                                   " of '" + call->function +
                                   "' must be a matrix");
      }
      return Status::OK();
    };
    switch (bit->second) {
      case BuiltinRule::kMatrixToScalar:
        RELM_RETURN_IF_ERROR(require_args(1, 1));
        RELM_RETURN_IF_ERROR(require_matrix(0));
        call->data_type = DataType::kScalar;
        call->value_type =
            (call->function == "nrow" || call->function == "ncol")
                ? ValueType::kInt
                : ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kMatrixToMatrix:
        RELM_RETURN_IF_ERROR(require_args(1, 1));
        RELM_RETURN_IF_ERROR(require_matrix(0));
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kElementwise:
        RELM_RETURN_IF_ERROR(require_args(1, 1));
        call->data_type = call->args[0].value->data_type;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kTwoMatrix:
        RELM_RETURN_IF_ERROR(require_args(2, 2));
        RELM_RETURN_IF_ERROR(require_matrix(0));
        RELM_RETURN_IF_ERROR(require_matrix(1));
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kMinMax: {
        RELM_RETURN_IF_ERROR(require_args(1, 2));
        bool any_matrix = false;
        for (const auto& a : call->args) {
          any_matrix |= a.value->data_type == DataType::kMatrix;
        }
        if (call->args.size() == 1) {
          // min(X): full aggregate -> scalar.
          RELM_RETURN_IF_ERROR(require_matrix(0));
          call->data_type = DataType::kScalar;
        } else {
          call->data_type =
              any_matrix ? DataType::kMatrix : DataType::kScalar;
        }
        call->value_type = ValueType::kDouble;
        return Status::OK();
      }
      case BuiltinRule::kPpred: {
        RELM_RETURN_IF_ERROR(require_args(3, 3));
        RELM_RETURN_IF_ERROR(require_matrix(0));
        if (call->args[2].value->kind != Expr::Kind::kLiteral ||
            call->args[2].value->value_type != ValueType::kString) {
          return ErrorAt(*call,
                         "third argument of ppred must be an operator "
                         "string like \">\"");
        }
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      }
      case BuiltinRule::kMatrixGen: {
        if (call->Named("rows") == nullptr ||
            call->Named("cols") == nullptr) {
          return ErrorAt(*call, "'" + call->function +
                                     "' requires rows= and cols=");
        }
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      }
      case BuiltinRule::kSeq:
        RELM_RETURN_IF_ERROR(require_args(2, 3));
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kRead:
        RELM_RETURN_IF_ERROR(require_args(1, 1));
        call->data_type = DataType::kMatrix;
        call->value_type = ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kCast:
        RELM_RETURN_IF_ERROR(require_args(1, 1));
        call->data_type = call->function == "as.matrix"
                              ? DataType::kMatrix
                              : DataType::kScalar;
        call->value_type = call->function == "as.integer"
                               ? ValueType::kInt
                               : ValueType::kDouble;
        return Status::OK();
      case BuiltinRule::kVoid:
        if (call->function == "write") {
          RELM_RETURN_IF_ERROR(require_args(2, 2));
        } else {
          RELM_RETURN_IF_ERROR(require_args(1, 1));
        }
        call->data_type = DataType::kScalar;
        call->value_type = ValueType::kString;
        return Status::OK();
    }
    return Status::OK();
  }

  DmlProgram* program_;
};

}  // namespace

bool IsBuiltinFunction(const std::string& name) {
  return Builtins().count(name) > 0;
}

Status ValidateProgram(DmlProgram* program) {
  Validator v(program);
  return v.Run();
}

}  // namespace relm

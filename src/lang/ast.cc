#include "lang/ast.h"

#include <sstream>

#include "common/string_util.h"

namespace relm {

const char* DataTypeName(DataType dt) {
  switch (dt) {
    case DataType::kUnknown:
      return "unknown";
    case DataType::kMatrix:
      return "matrix";
    case DataType::kScalar:
      return "scalar";
  }
  return "?";
}

const char* ValueTypeName(ValueType vt) {
  switch (vt) {
    case ValueType::kUnknown:
      return "unknown";
    case ValueType::kDouble:
      return "double";
    case ValueType::kInt:
      return "integer";
    case ValueType::kBoolean:
      return "boolean";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ExprPtr LiteralExpr::Number(double v) {
  auto e = std::make_unique<LiteralExpr>();
  e->literal_type = ValueType::kDouble;
  e->number = v;
  return e;
}

ExprPtr LiteralExpr::Bool(bool v) {
  auto e = std::make_unique<LiteralExpr>();
  e->literal_type = ValueType::kBoolean;
  e->boolean = v;
  return e;
}

ExprPtr LiteralExpr::String(std::string v) {
  auto e = std::make_unique<LiteralExpr>();
  e->literal_type = ValueType::kString;
  e->str = std::move(v);
  return e;
}

std::string LiteralExpr::ToString() const {
  switch (literal_type) {
    case ValueType::kBoolean:
      return boolean ? "TRUE" : "FALSE";
    case ValueType::kString:
      return "\"" + str + "\"";
    default:
      return FormatDouble(number, 10);
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + lhs->ToString() + " " + BinOpName(op) + " " +
         rhs->ToString() + ")";
}

std::string UnaryExpr::ToString() const {
  const char* sym = (op == UnOp::kNot) ? "!" : "-";
  return std::string(sym) + operand->ToString();
}

std::string MatMultExpr::ToString() const {
  return "(" + lhs->ToString() + " %*% " + rhs->ToString() + ")";
}

const Expr* CallExpr::Positional(size_t idx) const {
  size_t seen = 0;
  for (const auto& a : args) {
    if (!a.name.empty()) continue;
    if (seen == idx) return a.value.get();
    ++seen;
  }
  return nullptr;
}

const Expr* CallExpr::Named(const std::string& name) const {
  for (const auto& a : args) {
    if (a.name == name) return a.value.get();
  }
  return nullptr;
}

std::string CallExpr::ToString() const {
  std::ostringstream os;
  os << function << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    if (!args[i].name.empty()) os << args[i].name << "=";
    os << args[i].value->ToString();
  }
  os << ")";
  return os.str();
}

std::string IndexExpr::ToString() const {
  auto range = [](const ExprPtr& lo, const ExprPtr& hi) -> std::string {
    if (!lo) return "";
    if (!hi) return lo->ToString();
    return lo->ToString() + ":" + hi->ToString();
  };
  return target->ToString() + "[" + range(row_lower, row_upper) + ", " +
         range(col_lower, col_upper) + "]";
}

std::string AssignStmt::ToString() const {
  std::string lhs = targets.size() == 1
                        ? targets[0]
                        : "[" + Join(targets, ", ") + "]";
  if (has_left_index) {
    auto range = [](const ExprPtr& lo, const ExprPtr& hi) -> std::string {
      if (!lo) return "";
      if (!hi) return lo->ToString();
      return lo->ToString() + ":" + hi->ToString();
    };
    lhs += "[" + range(li_row_lower, li_row_upper) + ", " +
           range(li_col_lower, li_col_upper) + "]";
  }
  return lhs + " = " + rhs->ToString();
}

namespace {
std::string BodyToString(const std::vector<StmtPtr>& body) {
  std::ostringstream os;
  os << "{ ";
  for (const auto& s : body) os << s->ToString() << "; ";
  os << "}";
  return os.str();
}
}  // namespace

std::string IfStmt::ToString() const {
  std::string s = "if (" + predicate->ToString() + ") " +
                  BodyToString(then_body);
  if (!else_body.empty()) s += " else " + BodyToString(else_body);
  return s;
}

std::string WhileStmt::ToString() const {
  return "while (" + predicate->ToString() + ") " + BodyToString(body);
}

std::string ForStmt::ToString() const {
  std::string hdr = "for (" + var + " in " + from->ToString() + ":" +
                    to->ToString();
  if (increment) hdr += " by " + increment->ToString();
  return hdr + ") " + BodyToString(body);
}

std::string ExprStmt::ToString() const { return expr->ToString(); }

}  // namespace relm

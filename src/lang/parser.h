#ifndef RELM_LANG_PARSER_H_
#define RELM_LANG_PARSER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace relm {

/// Script-level parameters supplied at invocation time ($X, $icpt, ...),
/// mapped to their string spellings; numeric strings become numbers.
using ScriptArgs = std::map<std::string, std::string>;

/// Parses a DML script into an AST. `$name` parameters are substituted
/// from `args` (after `ifdef($name, default)` resolution during parsing a
/// missing parameter is a validation error when actually used).
Result<DmlProgram> ParseDml(const std::string& source,
                            const ScriptArgs& args = {});

}  // namespace relm

#endif  // RELM_LANG_PARSER_H_

#ifndef RELM_LANG_VALIDATOR_H_
#define RELM_LANG_VALIDATOR_H_

#include <map>
#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace relm {

/// Variable type entry for semantic validation.
struct VarType {
  DataType data_type = DataType::kUnknown;
  ValueType value_type = ValueType::kUnknown;
};

/// Semantic validation of a parsed program: resolves variable and function
/// references, checks builtin signatures and operand data types, and
/// annotates every expression with its DataType/ValueType in place.
/// Matrix dimensions are NOT inferred here; size propagation lives in the
/// HOP layer where it interacts with rewrites and memory estimation.
Status ValidateProgram(DmlProgram* program);

/// True if `name` is a known builtin function.
bool IsBuiltinFunction(const std::string& name);

}  // namespace relm

#endif  // RELM_LANG_VALIDATOR_H_

#include "lang/parser.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "lang/lexer.h"

namespace relm {
namespace {

/// Recursive-descent parser over the token stream. Operator precedence
/// follows R: ^  >  unary-  >  %*%  >  * /  >  + -  >  comparisons  >
/// !  >  &  >  |.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const ScriptArgs& args)
      : tokens_(std::move(tokens)), args_(args) {}

  Result<DmlProgram> ParseProgram() {
    DmlProgram prog;
    while (!AtEnd()) {
      // Function definition: ident = function(...) return (...) { ... }
      if (Check(TokenKind::kIdent) &&
          CheckAt(1, TokenKind::kAssign) &&
          CheckAt(2, TokenKind::kFunction)) {
        RELM_ASSIGN_OR_RETURN(FunctionDef fn, ParseFunctionDef());
        std::string name = fn.name;
        prog.functions.emplace(std::move(name), std::move(fn));
        continue;
      }
      RELM_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      prog.statements.push_back(std::move(stmt));
    }
    return prog;
  }

 private:
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Peek(size_t off = 0) const {
    size_t i = pos_ + off;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  bool Check(TokenKind k) const { return Peek().kind == k; }
  bool CheckAt(size_t off, TokenKind k) const { return Peek(off).kind == k; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind k) {
    if (!Check(k)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    std::ostringstream os;
    os << "line " << t.line << ":" << t.column << ": " << msg << " (got "
       << TokenKindName(t.kind)
       << (t.text.empty() ? "" : " '" + t.text + "'") << ")";
    return Status::ParseError(os.str());
  }

  Status Expect(TokenKind k, const char* what) {
    if (!Check(k)) {
      return Error(std::string("expected ") + TokenKindName(k) + " " + what);
    }
    Advance();
    return Status::OK();
  }

  // ---- statements ----

  Result<StmtPtr> ParseStatement() {
    switch (Peek().kind) {
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kWhile:
        return ParseWhile();
      case TokenKind::kFor:
        return ParseFor();
      case TokenKind::kLBracket:
        return ParseMultiAssign();
      default:
        break;
    }
    if (Check(TokenKind::kIdent) &&
        (CheckAt(1, TokenKind::kAssign) || CheckAt(1, TokenKind::kArrow))) {
      return ParseAssign();
    }
    // Left indexing: `X[rl:ru, cl:cu] = expr` (statement position only).
    if (Check(TokenKind::kIdent) && CheckAt(1, TokenKind::kLBracket)) {
      return ParseLeftIndexAssign();
    }
    // Expression statement (print/write calls).
    int line = Peek().line;
    int column = Peek().column;
    RELM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    auto stmt = std::make_unique<ExprStmt>();
    stmt->line = line;
    stmt->column = column;
    stmt->expr = std::move(e);
    Match(TokenKind::kSemicolon);
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseAssign() {
    auto stmt = std::make_unique<AssignStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    stmt->targets.push_back(Advance().text);
    Advance();  // '=' or '<-'
    RELM_ASSIGN_OR_RETURN(stmt->rhs, ParseExpr());
    Match(TokenKind::kSemicolon);
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseLeftIndexAssign() {
    auto stmt = std::make_unique<AssignStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    stmt->has_left_index = true;
    stmt->targets.push_back(Advance().text);  // ident
    Advance();                                // '['
    if (!Check(TokenKind::kComma)) {
      RELM_ASSIGN_OR_RETURN(stmt->li_row_lower, ParseExpr());
      if (Match(TokenKind::kColon)) {
        RELM_ASSIGN_OR_RETURN(stmt->li_row_upper, ParseExpr());
      }
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kComma, "in left indexing"));
    if (!Check(TokenKind::kRBracket)) {
      RELM_ASSIGN_OR_RETURN(stmt->li_col_lower, ParseExpr());
      if (Match(TokenKind::kColon)) {
        RELM_ASSIGN_OR_RETURN(stmt->li_col_upper, ParseExpr());
      }
    }
    RELM_RETURN_IF_ERROR(
        Expect(TokenKind::kRBracket, "closing left indexing"));
    if (!Match(TokenKind::kAssign) && !Match(TokenKind::kArrow)) {
      return Error("expected '=' after left-indexing target");
    }
    RELM_ASSIGN_OR_RETURN(stmt->rhs, ParseExpr());
    Match(TokenKind::kSemicolon);
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseMultiAssign() {
    auto stmt = std::make_unique<AssignStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    Advance();  // '['
    while (true) {
      if (!Check(TokenKind::kIdent)) return Error("expected identifier");
      stmt->targets.push_back(Advance().text);
      if (Match(TokenKind::kComma)) continue;
      break;
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "after targets"));
    if (!Match(TokenKind::kAssign) && !Match(TokenKind::kArrow)) {
      return Error("expected '=' after multi-assignment targets");
    }
    RELM_ASSIGN_OR_RETURN(stmt->rhs, ParseExpr());
    Match(TokenKind::kSemicolon);
    return StmtPtr(std::move(stmt));
  }

  Result<std::vector<StmtPtr>> ParseBody() {
    std::vector<StmtPtr> body;
    if (Match(TokenKind::kLBrace)) {
      while (!Check(TokenKind::kRBrace)) {
        if (AtEnd()) return Error("unterminated block; expected '}'");
        RELM_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
        body.push_back(std::move(s));
      }
      Advance();  // '}'
    } else {
      RELM_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      body.push_back(std::move(s));
    }
    return body;
  }

  Result<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<IfStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    Advance();  // 'if'
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'if'"));
    RELM_ASSIGN_OR_RETURN(stmt->predicate, ParseExpr());
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after if predicate"));
    RELM_ASSIGN_OR_RETURN(stmt->then_body, ParseBody());
    if (Match(TokenKind::kElse)) {
      if (Check(TokenKind::kIf)) {
        // else-if chains become a nested if in the else body.
        RELM_ASSIGN_OR_RETURN(StmtPtr nested, ParseIf());
        stmt->else_body.push_back(std::move(nested));
      } else {
        RELM_ASSIGN_OR_RETURN(stmt->else_body, ParseBody());
      }
    }
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseWhile() {
    auto stmt = std::make_unique<WhileStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    Advance();  // 'while'
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'while'"));
    RELM_ASSIGN_OR_RETURN(stmt->predicate, ParseExpr());
    RELM_RETURN_IF_ERROR(
        Expect(TokenKind::kRParen, "after while predicate"));
    RELM_ASSIGN_OR_RETURN(stmt->body, ParseBody());
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseFor() {
    auto stmt = std::make_unique<ForStmt>();
    stmt->line = Peek().line;
    stmt->column = Peek().column;
    Advance();  // 'for'
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'for'"));
    if (!Check(TokenKind::kIdent)) return Error("expected loop variable");
    stmt->var = Advance().text;
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kIn, "in for header"));
    // Either `a:b` or `seq(a, b, c)`.
    if (Check(TokenKind::kIdent) && Peek().text == "seq" &&
        CheckAt(1, TokenKind::kLParen)) {
      Advance();
      Advance();
      RELM_ASSIGN_OR_RETURN(stmt->from, ParseExpr());
      RELM_RETURN_IF_ERROR(Expect(TokenKind::kComma, "in seq()"));
      RELM_ASSIGN_OR_RETURN(stmt->to, ParseExpr());
      if (Match(TokenKind::kComma)) {
        RELM_ASSIGN_OR_RETURN(stmt->increment, ParseExpr());
      }
      RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "closing seq()"));
    } else {
      RELM_ASSIGN_OR_RETURN(stmt->from, ParseExpr());
      RELM_RETURN_IF_ERROR(Expect(TokenKind::kColon, "in for range"));
      RELM_ASSIGN_OR_RETURN(stmt->to, ParseExpr());
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after for header"));
    RELM_ASSIGN_OR_RETURN(stmt->body, ParseBody());
    return StmtPtr(std::move(stmt));
  }

  Result<FunctionDef> ParseFunctionDef() {
    FunctionDef fn;
    fn.name = Advance().text;  // ident
    Advance();                 // '='
    Advance();                 // 'function'
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'function'"));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        RELM_ASSIGN_OR_RETURN(FunctionParam p, ParseTypedParam());
        fn.params.push_back(std::move(p));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after parameters"));
    if (!Check(TokenKind::kReturn)) {
      return Error("expected 'return' clause in function definition");
    }
    Advance();  // 'return'
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after 'return'"));
    while (true) {
      RELM_ASSIGN_OR_RETURN(FunctionParam p, ParseTypedParam());
      fn.returns.push_back(std::move(p));
      if (!Match(TokenKind::kComma)) break;
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after returns"));
    RELM_ASSIGN_OR_RETURN(fn.body, ParseBody());
    return fn;
  }

  /// Parses `matrix[double] X`, `double lambda`, `integer k`, etc.
  Result<FunctionParam> ParseTypedParam() {
    FunctionParam p;
    if (!Check(TokenKind::kIdent)) return Error("expected parameter type");
    std::string type = Advance().text;
    if (type == "matrix") {
      p.data_type = DataType::kMatrix;
      p.value_type = ValueType::kDouble;
      if (Match(TokenKind::kLBracket)) {
        if (!Check(TokenKind::kIdent)) {
          return Error("expected cell type in matrix[...]");
        }
        Advance();
        RELM_RETURN_IF_ERROR(
            Expect(TokenKind::kRBracket, "closing matrix[...]"));
      }
    } else {
      p.data_type = DataType::kScalar;
      if (type == "double") {
        p.value_type = ValueType::kDouble;
      } else if (type == "integer" || type == "int") {
        p.value_type = ValueType::kInt;
      } else if (type == "boolean") {
        p.value_type = ValueType::kBoolean;
      } else if (type == "string") {
        p.value_type = ValueType::kString;
      } else {
        return Error("unknown type '" + type + "'");
      }
    }
    if (!Check(TokenKind::kIdent)) return Error("expected parameter name");
    p.name = Advance().text;
    return p;
  }

  // ---- expressions ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Check(TokenKind::kOr)) {
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Check(TokenKind::kAnd)) {
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Check(TokenKind::kNot)) {
      int line = Peek().line;
      int column = Peek().column;
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      auto e = std::make_unique<UnaryExpr>();
      e->line = line;
      e->column = column;
      e->op = UnOp::kNot;
      e->operand = std::move(operand);
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    while (true) {
      BinOp op;
      switch (Peek().kind) {
        case TokenKind::kLess:
          op = BinOp::kLess;
          break;
        case TokenKind::kLessEq:
          op = BinOp::kLessEq;
          break;
        case TokenKind::kGreater:
          op = BinOp::kGreater;
          break;
        case TokenKind::kGreaterEq:
          op = BinOp::kGreaterEq;
          break;
        case TokenKind::kEq:
          op = BinOp::kEq;
          break;
        case TokenKind::kNotEq:
          op = BinOp::kNotEq;
          break;
        default:
          return lhs;
      }
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseAdd() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      BinOp op = Check(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMatMult());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      BinOp op = Check(TokenKind::kStar) ? BinOp::kMul : BinOp::kDiv;
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMatMult());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMatMult() {
    RELM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Check(TokenKind::kMatMult)) {
      int line = Peek().line;
      int column = Peek().column;
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      auto e = std::make_unique<MatMultExpr>();
      e->line = line;
      e->column = column;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus)) {
      int line = Peek().line;
      int column = Peek().column;
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold -literal immediately so sizes like -1 stay literals.
      if (operand->kind == Expr::Kind::kLiteral) {
        auto* lit = static_cast<LiteralExpr*>(operand.get());
        if (lit->literal_type == ValueType::kDouble ||
            lit->literal_type == ValueType::kInt) {
          lit->number = -lit->number;
          return operand;
        }
      }
      auto e = std::make_unique<UnaryExpr>();
      e->line = line;
      e->column = column;
      e->op = UnOp::kNeg;
      e->operand = std::move(operand);
      return ExprPtr(std::move(e));
    }
    if (Check(TokenKind::kPlus)) {
      Advance();
      return ParseUnary();
    }
    return ParsePower();
  }

  Result<ExprPtr> ParsePower() {
    RELM_ASSIGN_OR_RETURN(ExprPtr base, ParsePostfix());
    if (Check(TokenKind::kCaret)) {
      Advance();
      RELM_ASSIGN_OR_RETURN(ExprPtr exp, ParseUnary());  // right assoc
      return MakeBinary(BinOp::kPow, std::move(base), std::move(exp));
    }
    return base;
  }

  Result<ExprPtr> ParsePostfix() {
    RELM_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    // Indexing must open on the same line as its target; a '[' on a new
    // line starts a multi-assignment statement instead (DML/R treat the
    // line break as a statement boundary here).
    while (Check(TokenKind::kLBracket) && pos_ > 0 &&
           Peek().line == tokens_[pos_ - 1].line) {
      int line = Peek().line;
      int column = Peek().column;
      Advance();
      auto idx = std::make_unique<IndexExpr>();
      idx->line = line;
      idx->column = column;
      idx->target = std::move(e);
      // Row range (possibly empty before the comma).
      if (!Check(TokenKind::kComma)) {
        RELM_ASSIGN_OR_RETURN(idx->row_lower, ParseExpr());
        if (Match(TokenKind::kColon)) {
          RELM_ASSIGN_OR_RETURN(idx->row_upper, ParseExpr());
        }
      }
      RELM_RETURN_IF_ERROR(Expect(TokenKind::kComma, "in indexing"));
      if (!Check(TokenKind::kRBracket)) {
        RELM_ASSIGN_OR_RETURN(idx->col_lower, ParseExpr());
        if (Match(TokenKind::kColon)) {
          RELM_ASSIGN_OR_RETURN(idx->col_upper, ParseExpr());
        }
      }
      RELM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "closing indexing"));
      e = std::move(idx);
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        Advance();
        ExprPtr e = LiteralExpr::Number(t.number);
        e->line = t.line;
        e->column = t.column;
        return e;
      }
      case TokenKind::kString: {
        Advance();
        ExprPtr e = LiteralExpr::String(t.text);
        e->line = t.line;
        e->column = t.column;
        return e;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        bool v = t.kind == TokenKind::kTrue;
        Advance();
        ExprPtr e = LiteralExpr::Bool(v);
        e->line = t.line;
        e->column = t.column;
        return e;
      }
      case TokenKind::kDollar: {
        Advance();
        return ResolveParam(t);
      }
      case TokenKind::kLParen: {
        Advance();
        RELM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "closing group"));
        return e;
      }
      case TokenKind::kIdent: {
        if (CheckAt(1, TokenKind::kLParen)) return ParseCall();
        Advance();
        auto e = std::make_unique<IdentExpr>();
        e->line = t.line;
        e->column = t.column;
        e->name = t.text;
        return ExprPtr(std::move(e));
      }
      default:
        return Error("expected expression");
    }
  }

  Result<ExprPtr> ParseCall() {
    const Token& name = Advance();  // ident
    Advance();                      // '('
    auto call = std::make_unique<CallExpr>();
    call->line = name.line;
    call->column = name.column;
    call->function = name.text;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        CallArg arg;
        if (Check(TokenKind::kIdent) && CheckAt(1, TokenKind::kAssign)) {
          arg.name = Advance().text;
          Advance();  // '='
        }
        RELM_ASSIGN_OR_RETURN(arg.value, ParseExpr());
        call->args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    RELM_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "closing call"));
    // `ifdef($p, default)` resolves at parse time: if the parameter was
    // supplied it became a literal; otherwise it is a ParamExpr and the
    // default wins.
    if (call->function == "ifdef") {
      if (call->args.size() != 2) {
        return Error("ifdef() takes exactly two arguments");
      }
      if (call->args[0].value->kind == Expr::Kind::kParam) {
        return std::move(call->args[1].value);
      }
      return std::move(call->args[0].value);
    }
    return ExprPtr(std::move(call));
  }

  /// Substitutes a `$name` parameter from the supplied script args. The
  /// special grammar form `ifdef($name, default)` is handled in ParseCall:
  /// when $name is missing there, the default is used instead.
  Result<ExprPtr> ResolveParam(const Token& t) {
    auto it = args_.find(t.text);
    // Inside ifdef(), a missing parameter becomes a sentinel the call
    // handler replaces; detect that by lookahead: our ParseCall consumed
    // arguments in order, so we signal "missing" via a ParamExpr.
    if (it == args_.end()) {
      auto e = std::make_unique<ParamExpr>();
      e->line = t.line;
      e->column = t.column;
      e->name = t.text;
      return ExprPtr(std::move(e));
    }
    const std::string& raw = it->second;
    // Numeric spellings become numbers; TRUE/FALSE booleans; else string.
    if (raw == "TRUE" || raw == "true") return LiteralExpr::Bool(true);
    if (raw == "FALSE" || raw == "false") return LiteralExpr::Bool(false);
    char* end = nullptr;
    double v = std::strtod(raw.c_str(), &end);
    if (end != nullptr && *end == '\0' && !raw.empty()) {
      return LiteralExpr::Number(v);
    }
    return LiteralExpr::String(raw);
  }

  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<BinaryExpr>();
    e->line = lhs->line;
    e->column = lhs->column;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  const ScriptArgs& args_;
  size_t pos_ = 0;
};

int CountSourceLines(const std::string& source) {
  int count = 0;
  bool has_code = false;
  for (size_t i = 0; i <= source.size(); ++i) {
    char c = i < source.size() ? source[i] : '\n';
    if (c == '\n') {
      if (has_code) ++count;
      has_code = false;
    } else if (c == '#') {
      // Rest of line is a comment; count the line only if code preceded.
      while (i < source.size() && source[i] != '\n') ++i;
      if (has_code) ++count;
      has_code = false;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      has_code = true;
    }
  }
  return count;
}

}  // namespace

Result<DmlProgram> ParseDml(const std::string& source,
                            const ScriptArgs& args) {
  RELM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens), args);
  RELM_ASSIGN_OR_RETURN(DmlProgram prog, parser.ParseProgram());
  prog.source_lines = CountSourceLines(source);
  return prog;
}

}  // namespace relm

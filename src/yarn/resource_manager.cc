#include "yarn/resource_manager.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace relm {

ResourceManager::ResourceManager(const ClusterConfig& cc) : cc_(cc) {
  free_.assign(cc_.num_worker_nodes, cc_.memory_per_node);
  down_.assign(cc_.num_worker_nodes, false);
}

Result<int64_t> ResourceManager::RoundRequest(int64_t memory) const {
  if (memory <= 0) {
    return Status::InvalidArgument("container request must be positive");
  }
  // Round up to a multiple of the minimum allocation (YARN semantics).
  int64_t units = (memory + cc_.min_allocation - 1) / cc_.min_allocation;
  memory = units * cc_.min_allocation;
  if (memory > cc_.max_allocation) {
    return Status::ResourceError(
        "container request " + FormatBytes(memory) +
        " exceeds maximum allocation " + FormatBytes(cc_.max_allocation));
  }
  return memory;
}

Result<Container> ResourceManager::Allocate(int64_t memory, int priority,
                                            const std::string& tag) {
  RELM_ASSIGN_OR_RETURN(memory, RoundRequest(memory));
  // Most-free-node placement over available nodes.
  int best = -1;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    if (down_[n]) continue;
    if (free_[n] >= memory && (best < 0 || free_[n] > free_[best])) {
      best = n;
    }
  }
  if (best < 0) {
    return Status::ResourceError("no node has " + FormatBytes(memory) +
                                 " free");
  }
  free_[best] -= memory;
  Container c{next_id_++, best, memory, priority, tag};
  live_[c.id] = c;
  RELM_COUNTER_INC("rm.allocations");
  return c;
}

Result<Container> ResourceManager::AllocateWithPreemption(
    int64_t memory, int priority, std::vector<Container>* preempted,
    const std::string& tag) {
  Result<Container> direct = Allocate(memory, priority, tag);
  if (direct.ok() ||
      direct.status().code() != StatusCode::kResourceError) {
    return direct;
  }
  RELM_ASSIGN_OR_RETURN(int64_t rounded, RoundRequest(memory));
  // Per node: how much memory strictly-lower-priority containers could
  // yield, and which they are (lowest priority first, then youngest, so
  // the cheapest work is killed first — capacity-scheduler order).
  int best = -1;
  int64_t best_evicted = 0;
  std::vector<Container> best_victims;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    if (down_[n]) continue;
    std::vector<Container> candidates;
    for (const auto& [id, c] : live_) {
      if (c.node == n && c.priority < priority) candidates.push_back(c);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Container& a, const Container& b) {
                if (a.priority != b.priority) {
                  return a.priority < b.priority;
                }
                return a.id > b.id;
              });
    int64_t freed = free_[n];
    std::vector<Container> victims;
    for (const Container& c : candidates) {
      if (freed >= rounded) break;
      freed += c.memory;
      victims.push_back(c);
    }
    if (freed < rounded) continue;
    int64_t evicted = 0;
    for (const Container& c : victims) evicted += c.memory;
    if (best < 0 || evicted < best_evicted) {
      best = n;
      best_evicted = evicted;
      best_victims = std::move(victims);
    }
  }
  if (best < 0) {
    return Status::ResourceError(
        "no node can host " + FormatBytes(rounded) +
        " even after preempting lower-priority containers");
  }
  for (const Container& victim : best_victims) {
    Release(victim);
    RELM_COUNTER_INC("rm.preemptions");
    if (preempted != nullptr) preempted->push_back(victim);
  }
  free_[best] -= rounded;
  Container c{next_id_++, best, rounded, priority, tag};
  live_[c.id] = c;
  RELM_COUNTER_INC("rm.allocations");
  return c;
}

void ResourceManager::Release(const Container& container) {
  auto it = live_.find(container.id);
  if (it == live_.end()) return;  // unknown, double-released, or killed
  // A container on a since-decommissioned node was already reclaimed
  // when the node went down; only the live_ entry needs to go.
  int node = it->second.node;
  if (node >= 0 && node < static_cast<int>(free_.size()) &&
      !down_[node]) {
    free_[node] = std::min(free_[node] + it->second.memory,
                           cc_.memory_per_node);
  }
  live_.erase(it);
  RELM_COUNTER_INC("rm.releases");
}

std::vector<Container> ResourceManager::DecommissionNode(int node) {
  std::vector<Container> killed;
  if (node < 0 || node >= static_cast<int>(free_.size())) return killed;
  if (down_[node]) return killed;
  down_[node] = true;
  free_[node] = 0;
  RELM_COUNTER_INC("rm.node_decommissions");
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.node == node) {
      killed.push_back(it->second);
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  return killed;
}

Status ResourceManager::RecommissionNode(int node) {
  if (node < 0 || node >= static_cast<int>(free_.size())) {
    return Status::InvalidArgument("no such node " + std::to_string(node));
  }
  if (!down_[node]) return Status::OK();
  down_[node] = false;
  free_[node] = cc_.memory_per_node;
  RELM_COUNTER_INC("rm.node_recommissions");
  return Status::OK();
}

bool ResourceManager::NodeAvailable(int node) const {
  if (node < 0 || node >= static_cast<int>(down_.size())) return false;
  return !down_[node];
}

int ResourceManager::NumAvailableNodes() const {
  int n = 0;
  for (bool d : down_) {
    if (!d) ++n;
  }
  return n;
}

int64_t ResourceManager::FreeMemory(int node) const {
  if (node < 0 || node >= static_cast<int>(free_.size())) return 0;
  return free_[node];
}

int64_t ResourceManager::TotalFreeMemory() const {
  int64_t total = 0;
  for (int64_t f : free_) total += f;
  return total;
}

int ResourceManager::MaxConcurrentContainers(int64_t memory) const {
  if (memory <= 0) return 0;
  int64_t units = (memory + cc_.min_allocation - 1) / cc_.min_allocation;
  memory = units * cc_.min_allocation;
  int total = 0;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    if (down_[n]) continue;
    total += static_cast<int>(cc_.memory_per_node / memory);
  }
  return total;
}

}  // namespace relm

#include "yarn/resource_manager.h"

#include <algorithm>

#include "common/string_util.h"

namespace relm {

ResourceManager::ResourceManager(const ClusterConfig& cc) : cc_(cc) {
  free_.assign(cc_.num_worker_nodes, cc_.memory_per_node);
}

Result<Container> ResourceManager::Allocate(int64_t memory) {
  if (memory <= 0) {
    return Status::InvalidArgument("container request must be positive");
  }
  // Round up to a multiple of the minimum allocation (YARN semantics).
  int64_t units = (memory + cc_.min_allocation - 1) / cc_.min_allocation;
  memory = units * cc_.min_allocation;
  if (memory > cc_.max_allocation) {
    return Status::ResourceError(
        "container request " + FormatBytes(memory) +
        " exceeds maximum allocation " + FormatBytes(cc_.max_allocation));
  }
  // Most-free-node placement.
  int best = -1;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    if (free_[n] >= memory && (best < 0 || free_[n] > free_[best])) {
      best = n;
    }
  }
  if (best < 0) {
    return Status::ResourceError("no node has " + FormatBytes(memory) +
                                 " free");
  }
  free_[best] -= memory;
  Container c{next_id_++, best, memory};
  live_[c.id] = c;
  return c;
}

void ResourceManager::Release(const Container& container) {
  auto it = live_.find(container.id);
  if (it == live_.end()) return;
  free_[it->second.node] += it->second.memory;
  live_.erase(it);
}

int64_t ResourceManager::FreeMemory(int node) const {
  if (node < 0 || node >= static_cast<int>(free_.size())) return 0;
  return free_[node];
}

int64_t ResourceManager::TotalFreeMemory() const {
  int64_t total = 0;
  for (int64_t f : free_) total += f;
  return total;
}

int ResourceManager::MaxConcurrentContainers(int64_t memory) const {
  if (memory <= 0) return 0;
  int64_t units = (memory + cc_.min_allocation - 1) / cc_.min_allocation;
  memory = units * cc_.min_allocation;
  int total = 0;
  for (int n = 0; n < cc_.num_worker_nodes; ++n) {
    total += static_cast<int>(cc_.memory_per_node / memory);
  }
  return total;
}

}  // namespace relm

#include "yarn/cluster_config.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace relm {

int64_t ClusterConfig::ContainerRequestForHeap(int64_t heap_bytes) const {
  int64_t request = static_cast<int64_t>(kContainerMemoryFactor *
                                         static_cast<double>(heap_bytes));
  // YARN rounds requests up to a multiple of the minimum allocation.
  int64_t units = (request + min_allocation - 1) / min_allocation;
  request = units * min_allocation;
  return std::min(request, max_allocation);
}

int ClusterConfig::MaxTasksPerNode(int64_t task_heap_bytes) const {
  // Task containers use the raw 1.5x request (the paper sizes task heaps
  // such that 12 * 1.5 * heap fits node memory exactly; min-allocation
  // rounding would spuriously drop one slot).
  int64_t per_task = static_cast<int64_t>(
      kContainerMemoryFactor * static_cast<double>(task_heap_bytes));
  if (per_task <= 0) return cores_per_node;
  int64_t by_memory = memory_per_node / per_task;
  return static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(by_memory, cores_per_node)));
}

ClusterConfig ClusterConfig::PaperCluster() {
  return ClusterConfig{};  // defaults mirror the paper's 1+6 node cluster
}

std::string ClusterConfig::ToString() const {
  std::ostringstream os;
  os << num_worker_nodes << " nodes x " << cores_per_node << " cores x "
     << FormatBytes(memory_per_node) << ", alloc ["
     << FormatBytes(min_allocation) << ", " << FormatBytes(max_allocation)
     << "], block " << FormatBytes(hdfs_block_size);
  return os.str();
}

}  // namespace relm

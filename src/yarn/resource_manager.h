#ifndef RELM_YARN_RESOURCE_MANAGER_H_
#define RELM_YARN_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "yarn/cluster_config.h"

namespace relm {

/// A granted container: node index, memory reserved on that node, and a
/// process-unique id.
struct Container {
  int64_t id = -1;
  int node = -1;
  int64_t memory = 0;
};

/// Capacity-accounting model of the YARN ResourceManager. Grants and
/// releases containers against per-node memory capacity with the
/// min/max-allocation semantics of the request-based YARN scheduler.
/// Time is not modeled here; the cluster simulator owns all timing.
class ResourceManager {
 public:
  explicit ResourceManager(const ClusterConfig& cc);

  const ClusterConfig& cluster() const { return cc_; }

  /// Tries to allocate a container of `memory` bytes (already rounded by
  /// the caller or rounded up here to a min-allocation multiple) on the
  /// node with the most free memory. Returns ResourceError if the request
  /// violates constraints and NotFound-like ResourceError if no node
  /// currently has room (caller may queue and retry).
  Result<Container> Allocate(int64_t memory);

  /// Releases a previously granted container (idempotent per id).
  void Release(const Container& container);

  /// Free memory on a given node.
  int64_t FreeMemory(int node) const;

  /// Total free memory across nodes.
  int64_t TotalFreeMemory() const;

  /// Number of currently live containers.
  int64_t NumLiveContainers() const { return live_.size(); }

  /// Maximum number of containers of the given size the idle cluster
  /// could host simultaneously (the paper's application-parallelism
  /// formula: sum over nodes of floor(nodeMem / containerSize)).
  int MaxConcurrentContainers(int64_t memory) const;

 private:
  ClusterConfig cc_;
  std::vector<int64_t> free_;  // free memory per node
  std::map<int64_t, Container> live_;
  int64_t next_id_ = 0;
};

}  // namespace relm

#endif  // RELM_YARN_RESOURCE_MANAGER_H_

#ifndef RELM_YARN_RESOURCE_MANAGER_H_
#define RELM_YARN_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "yarn/cluster_config.h"

namespace relm {

/// A granted container: node index, memory reserved on that node, a
/// process-unique id, the scheduling priority it was granted at
/// (higher values win preemption contests), and an optional owner tag
/// (the tenant name, stamped by multi-tenant callers) so preemption
/// victims are attributable per tenant.
struct Container {
  int64_t id = -1;
  int node = -1;
  int64_t memory = 0;
  int priority = 0;
  std::string tag;
};

/// Capacity-accounting model of the YARN ResourceManager. Grants and
/// releases containers against per-node memory capacity with the
/// min/max-allocation semantics of the request-based YARN scheduler,
/// plus the failure-handling surface the fault-injection subsystem
/// needs: node decommission/recommission (NodeManager loss and rejoin)
/// and priority preemption. Time is not modeled here; the cluster
/// simulator owns all timing.
class ResourceManager {
 public:
  explicit ResourceManager(const ClusterConfig& cc);

  const ClusterConfig& cluster() const { return cc_; }

  /// Tries to allocate a container of `memory` bytes (already rounded by
  /// the caller or rounded up here to a min-allocation multiple) on the
  /// available node with the most free memory. Returns ResourceError if
  /// the request violates constraints and NotFound-like ResourceError if
  /// no node currently has room (caller may queue and retry). `tag`
  /// names the owner (e.g. the tenant) for attribution.
  Result<Container> Allocate(int64_t memory, int priority = 0,
                             const std::string& tag = "");

  /// Allocates like Allocate(), but when no node has room it preempts
  /// strictly-lower-priority containers (lowest priority first, then
  /// most recently granted) on the node that needs the least eviction
  /// volume. Preempted containers are appended to `preempted` (may be
  /// null) and are no longer live; their owners must not Release them
  /// again (doing so is a safe no-op). Requests from a multi-tenant
  /// scheduler carry the tenant's priority and tag, so victims name the
  /// tenant that lost the container.
  Result<Container> AllocateWithPreemption(
      int64_t memory, int priority,
      std::vector<Container>* preempted = nullptr,
      const std::string& tag = "");

  /// Releases a previously granted container. Idempotent per id: double
  /// release, release of an unknown/never-granted id, and release of a
  /// container already reclaimed by decommission or preemption are safe
  /// no-ops, and the per-node free-memory invariant
  /// `FreeMemory(n) <= memory_per_node` holds after any sequence.
  void Release(const Container& container);

  /// Takes a node out of service (crash or maintenance): its capacity
  /// leaves the pool and every container hosted there is killed.
  /// Returns the killed containers so callers can re-schedule the lost
  /// work. Idempotent; an out-of-range node returns an empty list.
  std::vector<Container> DecommissionNode(int node);

  /// Returns a previously decommissioned node to service with its full
  /// capacity (all of its containers were killed at decommission time).
  /// Recommissioning an available node is a no-op.
  Status RecommissionNode(int node);

  /// Whether the node is currently in service.
  bool NodeAvailable(int node) const;

  /// Number of nodes currently in service.
  int NumAvailableNodes() const;

  /// Free memory on a given node (0 for decommissioned nodes).
  int64_t FreeMemory(int node) const;

  /// Total free memory across available nodes.
  int64_t TotalFreeMemory() const;

  /// Number of currently live containers.
  int64_t NumLiveContainers() const { return live_.size(); }

  /// Maximum number of containers of the given size the idle available
  /// cluster could host simultaneously (the paper's
  /// application-parallelism formula: sum over nodes of
  /// floor(nodeMem / containerSize)).
  int MaxConcurrentContainers(int64_t memory) const;

 private:
  /// Rounds a request up to a min-allocation multiple; ResourceError
  /// when the rounded request exceeds max_allocation.
  Result<int64_t> RoundRequest(int64_t memory) const;

  ClusterConfig cc_;
  std::vector<int64_t> free_;  // free memory per node
  std::vector<bool> down_;     // decommissioned nodes
  std::map<int64_t, Container> live_;
  int64_t next_id_ = 0;
};

}  // namespace relm

#endif  // RELM_YARN_RESOURCE_MANAGER_H_

#ifndef RELM_YARN_CLUSTER_CONFIG_H_
#define RELM_YARN_CLUSTER_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace relm {

/// Fraction of the max JVM heap available as operation memory budget
/// (SystemML default used in the paper's setup: 70%).
inline constexpr double kMemoryBudgetFraction = 0.70;

/// Container memory requested per unit of heap, to account for JVM
/// overheads (the paper requests 1.5x the max heap size).
inline constexpr double kContainerMemoryFactor = 1.5;

/// Cluster information `cc` as obtained from the resource manager: node
/// shape, YARN min/max allocation constraints, and IO characteristics that
/// the cost model and simulator share.
struct ClusterConfig {
  int num_worker_nodes = 6;
  int cores_per_node = 12;        // physical cores usable for tasks
  int vcores_per_node = 24;       // with hyper-threading
  int64_t memory_per_node = 80 * kGB;  // NM-managed memory
  int64_t min_allocation = 512 * kMB;  // YARN scheduler minimum
  int64_t max_allocation = 80 * kGB;   // YARN scheduler maximum
  int64_t hdfs_block_size = 128 * kMB;
  int num_reducers = 12;  // SystemML default: 2x number of nodes

  /// Fraction of MR task slots currently available to this application
  /// (1.0 = idle cluster). Multi-tenant load shrinks the achievable
  /// degree of parallelism; the cluster-utilization-based adaptation
  /// extension (Section 6) re-optimizes when this changes.
  double mr_slot_availability = 1.0;

  /// IO and compute characteristics shared by cost model and simulator.
  double disk_read_mbps = 180.0;      // per-disk sequential read, MB/s
  double disk_write_mbps = 140.0;     // per-disk sequential write, MB/s
  int disks_per_node = 12;
  double network_mbps = 1100.0;       // ~10GbE effective per node, MB/s
  double peak_gflops = 3.2;           // per-core double-precision GFLOP/s

  /// Latency constants (seconds). MR-v2 job submission spawns a per-job
  /// MR AM container; task waves pay JVM/startup costs.
  double mr_job_latency = 6.0;        // job submission + MR AM spawn
  double mr_task_latency = 1.5;       // per task-wave startup
  double container_alloc_latency = 2.0;  // obtaining a new container

  int total_cores() const { return num_worker_nodes * cores_per_node; }
  int total_vcores() const { return num_worker_nodes * vcores_per_node; }
  int64_t total_memory() const {
    return static_cast<int64_t>(num_worker_nodes) * memory_per_node;
  }

  /// Aggregate disk bandwidth of one node in bytes/second.
  double node_disk_read_bps() const {
    return disk_read_mbps * disks_per_node * 1e6;
  }
  double node_disk_write_bps() const {
    return disk_write_mbps * disks_per_node * 1e6;
  }

  /// Largest heap whose 1.5x container request fits max_allocation
  /// (53.3 GB for the paper's 80 GB limit).
  int64_t MaxHeapSize() const {
    return static_cast<int64_t>(static_cast<double>(max_allocation) /
                                kContainerMemoryFactor);
  }

  /// Smallest grantable heap (the scheduler minimum itself; the paper's
  /// baselines use 512 MB heaps on 512 MB minimum allocations).
  int64_t MinHeapSize() const { return min_allocation; }

  /// Container memory requested for a given max heap size, rounded up to
  /// a multiple of the scheduler minimum and clamped to max_allocation.
  int64_t ContainerRequestForHeap(int64_t heap_bytes) const;

  /// Operation memory budget for a given max heap size (0.7 x heap).
  static int64_t BudgetForHeap(int64_t heap_bytes) {
    return static_cast<int64_t>(kMemoryBudgetFraction *
                                static_cast<double>(heap_bytes));
  }

  /// Maximum concurrently running task containers per node for a given
  /// task heap size: limited by memory (1.5x heap per container) and by
  /// physical cores.
  int MaxTasksPerNode(int64_t task_heap_bytes) const;

  /// The cluster used in the paper's evaluation (1 head + 6 workers).
  static ClusterConfig PaperCluster();

  std::string ToString() const;
};

}  // namespace relm

#endif  // RELM_YARN_CLUSTER_CONFIG_H_

#include "serve/job_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/dataflow.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/plan_cache.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace relm {
namespace serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

#if RELM_OBS_ENABLED
/// Dynamic-name registry access for per-tenant metrics (the RELM_*
/// macros cache one handle per call site, which is wrong for names
/// built at runtime).
void TenantCounterAdd(const std::string& tenant, const char* suffix,
                      int64_t delta) {
  obs::MetricsRegistry::Global()
      .GetCounter("serve.tenant." + tenant + suffix)
      ->Add(delta);
}
#endif

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status ServeOptions::Validate() const {
  if (num_workers <= 0) {
    return Status::InvalidArgument("ServeOptions: num_workers must be > 0");
  }
  if (max_pending_jobs <= 0) {
    return Status::InvalidArgument(
        "ServeOptions: max_pending_jobs must be > 0");
  }
  if (max_queued_per_tenant <= 0) {
    return Status::InvalidArgument(
        "ServeOptions: max_queued_per_tenant must be > 0");
  }
  if (max_pooled_programs < 0) {
    return Status::InvalidArgument(
        "ServeOptions: max_pooled_programs must be >= 0");
  }
  if (exec_workers < 0) {
    return Status::InvalidArgument(
        "ServeOptions: exec_workers must be >= 0");
  }
  if (max_retrying_jobs < 0) {
    return Status::InvalidArgument(
        "ServeOptions: max_retrying_jobs must be >= 0");
  }
  if (degrade_after_attempts < 1) {
    return Status::InvalidArgument(
        "ServeOptions: degrade_after_attempts must be >= 1");
  }
  if (!artifact_store.path.empty()) {
    RELM_RETURN_IF_ERROR(artifact_store.Validate());
  }
  RELM_RETURN_IF_ERROR(retry.Validate());
  RELM_RETURN_IF_ERROR(fault_policy.Validate());
  RELM_RETURN_IF_ERROR(optimizer.Validate());
  RELM_RETURN_IF_ERROR(sim.Validate());
  return Status::OK();
}

// ---- job control block -------------------------------------------------

/// Shared between the service, the executing worker, and every handle
/// copy. The service mutex does NOT protect this; each job has its own.
struct JobHandle::Shared {
  uint64_t id = 0;
  std::string tenant;
  JobRequest request;
  std::chrono::steady_clock::time_point submit_time;

  std::mutex mu;
  std::condition_variable done_cv;
  JobState state = JobState::kQueued;
  Status error = Status::OK();
  JobOutcome outcome;
  /// Set by JobHandle::Cancel(); checked at attempt boundaries and
  /// during retry backoff (lock-free so waiters never contend with the
  /// executing worker).
  std::atomic<bool> cancel_requested{false};
  /// Set when the job's execution container is reclaimed mid-attempt
  /// (preempted by a higher-priority tenant or killed by node loss);
  /// consumed at the attempt boundary, where the attempt resolves with
  /// a retryable Unavailable and re-runs.
  std::atomic<bool> preempted{false};
};

namespace {

bool IsTerminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

}  // namespace

struct JobService::Job {
  std::shared_ptr<JobHandle::Shared> shared;
  /// Dispatch decision tag from the scheduler (SchedDecision::reason),
  /// stamped onto the job's TraceContext by RunJob.
  std::string sched_decision;
};

/// Per-tenant SLO slot. The histogram and counters are internally
/// atomic; only the owning map (tenant_local_) needs a lock.
struct JobService::TenantLocal {
  obs::Histogram wait_ms;
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> deadline_misses{0};
  std::atomic<int64_t> preemptions{0};
};

uint64_t JobHandle::id() const { return shared_ ? shared_->id : 0; }

const std::string& JobHandle::tenant() const {
  static const std::string kEmpty;
  return shared_ ? shared_->tenant : kEmpty;
}

JobState JobHandle::state() const {
  if (!shared_) return JobState::kFailed;
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->state;
}

Result<JobOutcome> JobHandle::Await() {
  if (!shared_) {
    return Status::InvalidArgument("Await on an invalid (empty) JobHandle");
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->done_cv.wait(lock, [this] { return IsTerminal(shared_->state); });
  if (shared_->state != JobState::kCompleted) return shared_->error;
  return shared_->outcome;
}

Result<JobOutcome> JobHandle::AwaitFor(double seconds) {
  if (!shared_) {
    return Status::InvalidArgument(
        "AwaitFor on an invalid (empty) JobHandle");
  }
  std::unique_lock<std::mutex> lock(shared_->mu);
  const bool done = shared_->done_cv.wait_for(
      lock, std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0),
      [this] { return IsTerminal(shared_->state); });
  if (!done) {
    return Status::DeadlineExceeded(
        "job " + std::to_string(shared_->id) + " still unfinished after " +
        std::to_string(seconds) + "s wait");
  }
  if (shared_->state != JobState::kCompleted) return shared_->error;
  return shared_->outcome;
}

bool JobHandle::Cancel() {
  if (!shared_) return false;
  shared_->cancel_requested.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shared_->mu);
  return !IsTerminal(shared_->state);
}

// ---- service lifecycle -------------------------------------------------

JobService::JobService(ClusterConfig cc, ServeOptions options)
    : options_(std::move(options)),
      session_(cc, SessionOptions()
                       .WithPlanCache(options_.plan_cache)
                       .WithArtifactStore(options_.artifact_store)),
      startup_status_(options_.Validate()),
      cost_oracle_(session_.plan_cache()),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.max_inflight_container_bytes <= 0) {
    options_.max_inflight_container_bytes = cc.total_memory();
  }
  if (!startup_status_.ok()) return;
  {
    // Workers have not started yet; the lock satisfies the guarded-by
    // annotations, not a concurrency need.
    std::lock_guard<std::mutex> lock(mu_);
    sched::SchedulerLimits limits;
    limits.max_pending_jobs = options_.max_pending_jobs;
    limits.max_queued_per_tenant = options_.max_queued_per_tenant;
    if (options_.scheduler_factory != nullptr) {
      scheduler_ = options_.scheduler_factory(limits, options_.tenant_quotas);
      if (scheduler_ == nullptr) {
        startup_status_ = Status::InvalidArgument(
            "ServeOptions: scheduler_factory returned null");
        return;
      }
    } else {
      scheduler_ = sched::MakeScheduler(options_.scheduler, limits,
                                        options_.tenant_quotas);
    }
    if (scheduler_->capacity_mode() == sched::CapacityMode::kPreemptiveRm) {
      // The policy wants per-node placement with priority preemption:
      // the service owns a ResourceManager modeling the same cluster
      // the session simulates.
      am_rm_ = std::make_unique<ResourceManager>(cc);
    }
  }
  if (options_.exec_workers > 0) {
    // One process-wide kernel/DAG pool shared by every job; per-job
    // pools would oversubscribe the host num_workers times over. The
    // pool may already be live (another service, or engine work in
    // flight) — never rebuild it from under its users; the first
    // configuration to build the pool wins.
    if (!exec::TrySetWorkers(options_.exec_workers)) {
      RELM_WARN() << "JobService: shared exec pool is already live with "
                  << exec::Workers() << " workers; ignoring exec_workers="
                  << options_.exec_workers;
    }
  }
  // Record what is actually live (vs what was requested) so stats()
  // exposes a refused TrySetWorkers instead of burying it in a log.
  exec_workers_effective_ = exec::Workers();
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

JobService::~JobService() { Shutdown(); }

void JobService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second call: workers are already winding down; fall through to
      // join whatever is left.
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  capacity_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void JobService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

double JobService::NowSeconds() const { return SecondsSince(epoch_); }

JobService::Stats JobService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.queued = queued_;
  out.running = running_;
  out.retrying = retrying_;
  out.inflight_container_bytes = inflight_container_bytes_;
  out.exec_workers_requested = options_.exec_workers;
  out.exec_workers_effective = exec_workers_effective_;
  if (scheduler_ != nullptr) {
    out.scheduler = scheduler_->name();
    out.sched = scheduler_->stats();
  }
  {
    std::lock_guard<std::mutex> pool_lock(pool_mu_);
    out.pooled_programs = static_cast<int>(pooled_instances_);
  }
  const auto fill = [](const obs::Histogram& hist, Stats::Slo* slo) {
    slo->count = hist.count();
    slo->p50 = hist.Percentile(0.50);
    slo->p95 = hist.Percentile(0.95);
    slo->p99 = hist.Percentile(0.99);
  };
  fill(wait_ms_hist_, &out.wait_ms);
  fill(run_ms_hist_, &out.run_ms);
  fill(e2e_ms_hist_, &out.e2e_ms);
  fill(attempts_hist_, &out.attempts_per_job);
  {
    std::lock_guard<std::mutex> tenant_lock(tenant_mu_);
    for (const auto& [tenant, local] : tenant_local_) {
      Stats::TenantStats& ts = out.per_tenant[tenant];
      fill(local->wait_ms, &ts.wait_ms);
      ts.completed = local->completed.load(std::memory_order_relaxed);
      ts.deadline_misses =
          local->deadline_misses.load(std::memory_order_relaxed);
      ts.preemptions = local->preemptions.load(std::memory_order_relaxed);
    }
  }
  return out;
}

JobService::TenantLocal& JobService::TenantLocalFor(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  std::unique_ptr<TenantLocal>& slot = tenant_local_[tenant];
  if (slot == nullptr) slot = std::make_unique<TenantLocal>();
  return *slot;
}

// ---- submission / admission -------------------------------------------

Result<JobHandle> JobService::Submit(const std::string& tenant,
                                     JobRequest request) {
  if (!startup_status_.ok()) return startup_status_;
  const std::string name = tenant.empty() ? "default" : tenant;

  auto shared = std::make_shared<JobHandle::Shared>();
  shared->tenant = name;
  shared->request = std::move(request);
  shared->submit_time = std::chrono::steady_clock::now();

  // Cost estimate outside the lock: the signature hashes source + args
  // + namespace metadata, and the oracle resolves it with a hash probe
  // against the what-if cache — never a recomputation. Scripts whose
  // inputs are first registered by the run itself hash differently
  // here than at run time, so they schedule estimate-free once and
  // warm after their first optimization.
  const uint64_t script_sig = ComputeScriptSignature(
      shared->request.source, shared->request.args, &session_.hdfs());
  const double estimate = cost_oracle_.EstimateRuntimeSeconds(script_sig);

  sched::SchedEntry entry;
  entry.tenant = name;
  entry.deadline_seconds = shared->request.deadline_seconds;
  entry.cost_estimate_seconds = estimate;
  entry.priority = shared->request.priority;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::ResourceError("JobService is shutting down");
    }
    entry.submit_seconds = NowSeconds();
    entry.job_id = next_job_id_++;
    const Status admitted = scheduler_->Admit(entry);
    if (!admitted.ok()) {
      stats_.rejected++;
      RELM_COUNTER_INC("serve.jobs_rejected");
      return admitted;
    }
    shared->id = entry.job_id;
    auto job = std::make_shared<Job>();
    job->shared = shared;
    pending_[entry.job_id] = std::move(job);
    queued_++;
    stats_.submitted++;
    RELM_COUNTER_INC("serve.jobs_submitted");
    RELM_GAUGE_SET("serve.queue_depth", static_cast<double>(queued_));
  }
  work_cv_.notify_one();
  return JobHandle(std::move(shared));
}

// ---- worker pool -------------------------------------------------------

std::shared_ptr<JobService::Job> JobService::NextJobLocked() {
  std::optional<sched::SchedDecision> decision =
      scheduler_->Dequeue(NowSeconds());
  if (!decision.has_value()) return nullptr;
  auto it = pending_.find(decision->job_id);
  // The scheduler only dispatches ids it admitted, and every admitted
  // id is in pending_ until dequeued.
  std::shared_ptr<Job> job = std::move(it->second);
  pending_.erase(it);
  job->sched_decision = std::move(decision->reason);
  queued_--;
  running_++;
  RELM_GAUGE_SET("serve.queue_depth", static_cast<double>(queued_));
  return job;
}

void JobService::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ || scheduler_->HasRunnable(NowSeconds());
      });
      // Drain remaining queued jobs even when stopping: accepted jobs
      // always resolve, so no Await() ever hangs.
      job = NextJobLocked();
      if (job == nullptr) {
        if (stopping_) return;
        continue;  // spurious runnable signal; re-wait
      }
    }
    RunJob(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_--;
      scheduler_->OnJobFinished(job->shared->tenant);
      if (queued_ == 0 && running_ == 0) drain_cv_.notify_all();
    }
  }
}

// ---- execution capacity ------------------------------------------------

Status JobService::AcquireCapacity(
    const std::shared_ptr<JobHandle::Shared>& shared, int64_t container_bytes,
    int vcores, int64_t* rm_container) {
  *rm_container = -1;
  std::unique_lock<std::mutex> lock(mu_);
  if (scheduler_->capacity_mode() == sched::CapacityMode::kFifoByteCap) {
    // Grants are strictly FIFO: each waiter takes a ticket and only the
    // ticket being served may claim. Without the ordering, a steady
    // stream of small jobs that keep fitting under the cap would keep
    // inflight bytes nonzero forever and starve a request larger than
    // the cap, which is only admitted when it has the cluster to itself
    // (it can never fit alongside others, but must not deadlock
    // either).
    const uint64_t ticket = capacity_next_ticket_++;
    capacity_cv_.wait(lock, [this, ticket, container_bytes] {
      if (ticket != capacity_serving_) return false;
      if (inflight_container_bytes_ == 0) return true;
      return inflight_container_bytes_ + container_bytes <=
             options_.max_inflight_container_bytes;
    });
    capacity_serving_++;
    inflight_container_bytes_ += container_bytes;
    RELM_GAUGE_SET("serve.inflight_container_bytes",
                   static_cast<double>(inflight_container_bytes_));
    lock.unlock();
    // The next ticket holder may already fit under the cap; wake
    // waiters so it can claim without waiting for a capacity release.
    capacity_cv_.notify_all();
    return Status::OK();
  }
  // Preemptive-RM mode: place the AM container on a node at the
  // scheduler's allocation priority. In-quota tenants carry a priority
  // boost, so when no node has room their grant preempts over-quota
  // containers instead of queueing behind them.
  const std::string& tenant = shared->tenant;
  while (true) {
    const int priority =
        scheduler_->AllocationPriority(tenant, shared->request.priority);
    std::vector<Container> preempted;
    Result<Container> granted = am_rm_->AllocateWithPreemption(
        container_bytes, priority, &preempted, tenant);
    if (granted.ok()) {
      for (const Container& victim : preempted) {
        ReclaimVictimLocked(victim);
      }
      ContainerGrant grant;
      grant.owner = shared;
      grant.tenant = tenant;
      grant.memory = granted->memory;
      grant.vcores = vcores;
      container_grants_[granted->id] = std::move(grant);
      *rm_container = granted->id;
      inflight_container_bytes_ += granted->memory;
      RELM_GAUGE_SET("serve.inflight_container_bytes",
                     static_cast<double>(inflight_container_bytes_));
      scheduler_->OnCapacityAcquired(tenant, granted->memory, vcores);
      return Status::OK();
    }
    // No grant. With zero live containers there is nothing to wait on:
    // the request is permanently unsatisfiable if the full cluster is
    // up (larger than any node allows), and during shutdown no node
    // restore is coming either. Both resolve the attempt with the RM's
    // typed error instead of hanging.
    if (am_rm_->NumLiveContainers() == 0 &&
        (stopping_ ||
         am_rm_->NumAvailableNodes() == am_rm_->cluster().num_worker_nodes)) {
      return granted.status();
    }
    // Otherwise room frees up when a container releases (or a lost
    // node returns); re-check periodically as well so node-restore
    // races cannot strand a waiter.
    capacity_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void JobService::ReleaseCapacity(int64_t container_bytes,
                                 int64_t rm_container) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (scheduler_->capacity_mode() == sched::CapacityMode::kFifoByteCap) {
      inflight_container_bytes_ -= container_bytes;
      RELM_GAUGE_SET("serve.inflight_container_bytes",
                     static_cast<double>(inflight_container_bytes_));
    } else {
      auto it = container_grants_.find(rm_container);
      if (it != container_grants_.end()) {
        // Normal release. A missing grant means the container was
        // preempted or its node was lost: the RM already reclaimed the
        // memory and ReclaimVictimLocked already balanced the books.
        Container released;
        released.id = rm_container;
        am_rm_->Release(released);
        inflight_container_bytes_ -= it->second.memory;
        scheduler_->OnCapacityReleased(it->second.tenant, it->second.memory,
                                       it->second.vcores);
        container_grants_.erase(it);
        RELM_GAUGE_SET("serve.inflight_container_bytes",
                       static_cast<double>(inflight_container_bytes_));
      }
    }
  }
  capacity_cv_.notify_all();
}

void JobService::ReclaimVictimLocked(const Container& victim) {
  auto it = container_grants_.find(victim.id);
  if (it == container_grants_.end()) return;
  ContainerGrant& grant = it->second;
  // Flag the owner: its in-flight attempt's work is lost; the attempt
  // resolves with a retryable Unavailable at the next boundary.
  grant.owner->preempted.store(true, std::memory_order_relaxed);
  inflight_container_bytes_ -= grant.memory;
  scheduler_->OnCapacityReleased(grant.tenant, grant.memory, grant.vcores);
  stats_.preempted++;
  TenantLocalFor(grant.tenant)
      .preemptions.fetch_add(1, std::memory_order_relaxed);
  RELM_COUNTER_INC("sched.preemptions");
#if RELM_OBS_ENABLED
  TenantCounterAdd(grant.tenant, ".preemptions", 1);
#endif
  container_grants_.erase(it);
}

int JobService::InjectNodeLoss(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (am_rm_ == nullptr) return 0;
  const std::vector<Container> killed = am_rm_->DecommissionNode(node);
  for (const Container& victim : killed) {
    ReclaimVictimLocked(victim);
  }
  RELM_COUNTER_INC("serve.node_loss_injected");
  return static_cast<int>(killed.size());
}

Status JobService::RestoreNode(int node) {
  Status status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (am_rm_ == nullptr) return Status::OK();
    status = am_rm_->RecommissionNode(node);
  }
  capacity_cv_.notify_all();
  return status;
}

Status JobService::ConsumePreemption(JobHandle::Shared& shared) {
  if (!shared.preempted.exchange(false, std::memory_order_relaxed)) {
    return Status::OK();
  }
  RELM_COUNTER_INC("sched.preempted_attempts");
  // Unavailable is retryable: the victim re-runs through the normal
  // retry machinery, re-acquiring capacity at its own (possibly low)
  // priority — lost work is modeled, not silently kept.
  return Status::Unavailable(
      "job " + std::to_string(shared.id) +
      " lost its execution container (preempted by a higher-priority "
      "tenant or node failure)");
}

// ---- program instance pool ---------------------------------------------

Result<std::unique_ptr<MlProgram>> JobService::AcquireProgram(
    uint64_t script_sig, const JobRequest& request) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    auto it = program_pool_.find(script_sig);
    if (it != program_pool_.end() && !it->second.empty()) {
      std::unique_ptr<MlProgram> program = std::move(it->second.back());
      it->second.pop_back();
      if (it->second.empty()) program_pool_.erase(it);
      pool_fifo_.erase(std::find(pool_fifo_.begin(), pool_fifo_.end(),
                                 script_sig));
      pooled_instances_--;
      RELM_COUNTER_INC("serve.program_pool_hits");
      return program;
    }
  }
  RELM_COUNTER_INC("serve.program_pool_misses");
  return session_.CompileSource(request.source, request.args);
}

void JobService::ReleaseProgram(uint64_t script_sig,
                                std::unique_ptr<MlProgram> program) {
  // Only park instances a run cannot have left state on: any discovered
  // size (dynamic recompilation) shows up in size_overrides, unknowns
  // make such discoveries possible, and user functions let the
  // simulator's call-size derivation rebuild the IR. The predicate
  // lives on MlProgram so the analysis layer's pool-purity pass can
  // cross-check the same verdict against an independent IR scan.
  if (program == nullptr || !program->IsPoolableTraceFree()) {
    return;
  }
  const size_t cap = static_cast<size_t>(options_.max_pooled_programs);
  if (cap == 0) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Park the newest instance and FIFO-evict the oldest at capacity —
  // instances under signatures no job asks for anymore (e.g. stale
  // after a metadata change) age out instead of filling the pool with
  // programs that can never be acquired again.
  while (pooled_instances_ >= cap) {
    const uint64_t victim_sig = pool_fifo_.front();
    pool_fifo_.pop_front();
    auto it = program_pool_.find(victim_sig);
    it->second.pop_back();
    if (it->second.empty()) program_pool_.erase(it);
    pooled_instances_--;
    RELM_COUNTER_INC("serve.program_pool_evictions");
  }
  program_pool_[script_sig].push_back(std::move(program));
  pool_fifo_.push_back(script_sig);
  pooled_instances_++;
}

// ---- execution ---------------------------------------------------------

Status JobService::RunAttempt(
    const std::shared_ptr<JobHandle::Shared>& shared_job, JobOutcome* outcome,
    bool degraded, exec::ChaosInjector* chaos, obs::TraceContext ctx,
    obs::MetricScope* scope) {
  JobHandle::Shared& shared = *shared_job;
  // Inputs first: concurrent registration is safe (SimulatedHdfs
  // locks internally) and identical re-registration is idempotent.
  for (const InputSpec& input : shared.request.inputs) {
    RELM_RETURN_IF_ERROR(session_.RegisterMatrixMetadata(
        input.path, input.rows, input.cols, input.sparsity));
  }
  const uint64_t script_sig = ComputeScriptSignature(
      shared.request.source, shared.request.args, &session_.hdfs());
  // Re-bind the trace context now that the plan signature is known:
  // every span and instant below (optimizer, engine, memory manager,
  // chaos faults) carries the full job/plan/attempt attribution. The
  // scope keeps the latest attempt's identity, so the outcome snapshot
  // names the attempt that actually resolved the job.
  ctx.plan_signature = script_sig;
  obs::ScopedTraceContext bind_attempt(ctx);
  if (scope != nullptr) scope->set_context(ctx);
  RELM_ASSIGN_OR_RETURN(std::unique_ptr<MlProgram> program,
                        AcquireProgram(script_sig, shared.request));
  RELM_ASSIGN_OR_RETURN(OptimizeOutcome opt,
                        session_.Optimize(program.get(), options_.optimizer));
  outcome->config = opt.config;
  outcome->opt_stats = std::move(opt.stats);
  // The optimizer already costed the winning configuration; reuse it
  // rather than re-deriving the estimate per job.
  outcome->estimated_cost_seconds = outcome->opt_stats.best_cost;
  {
    // Feed the scheduler's cost oracle: record which what-if grid
    // point won for this script so the next submission of the same
    // script is ordered by a cached runtime estimate (a hash lookup at
    // Submit time, never a recomputation).
    WhatIfKey what_if;
    what_if.program_sig = ComputeProgramSignature(*program);
    what_if.context_hash =
        ComputeOptimizerContextHash(session_.cluster(), options_.optimizer);
    what_if.cp_heap = outcome->config.cp_heap;
    what_if.cp_cores = outcome->config.cp_cores;
    cost_oracle_.Observe(script_sig, what_if, outcome->opt_stats.best_cost);
  }
  if (options_.static_bound_policy != StaticBoundPolicy::kOff) {
    // Admission on the static dataflow bound: the plan cache computed
    // the summary once at compile time; fall back to a direct analysis
    // when the cache is disabled or the entry aged out. Only a FINITE
    // bound is actionable — unknown dims mean "no static verdict".
    std::shared_ptr<const analysis::DataflowSummary> df =
        session_.plan_cache() != nullptr
            ? session_.plan_cache()->LookupDataflow(script_sig)
            : nullptr;
    if (df == nullptr) {
      df = std::make_shared<const analysis::DataflowSummary>(
          analysis::AnalyzeDataflow(*program));
    }
    const int64_t budget = outcome->config.CpBudget();
    if (df->peak.bounded && df->peak.resident_bytes > budget) {
      RELM_COUNTER_INC("serve.static_bound_violations");
      if (options_.static_bound_policy == StaticBoundPolicy::kReject) {
        ReleaseProgram(script_sig, std::move(program));
        // ResourceError is non-retryable (common/retry.h): the bound is
        // a property of script and grant, so retrying cannot help.
        return Status::ResourceError(
            "admission rejected: static peak-memory bound " +
            std::to_string(df->peak.resident_bytes) +
            " bytes exceeds the granted CP budget " +
            std::to_string(budget) + " bytes");
      }
      // kDegradeSerial: admit, but run the serial reference engine —
      // parallel scheduling holds several working sets at once, which
      // is exactly what a plan already predicted to spill cannot afford.
      degraded = true;
      outcome->degraded = true;
    }
  }
  if (options_.simulate) {
    // Execution-time admission: hold back until the granted CP (AM)
    // container fits (byte cap), or place it through the RM with
    // preemption (cost-aware policy).
    const int64_t container_bytes =
        session_.cluster().ContainerRequestForHeap(outcome->config.cp_heap);
    int64_t rm_container = -1;
    RELM_RETURN_IF_ERROR(AcquireCapacity(
        shared_job, container_bytes, outcome->config.cp_cores, &rm_container));
    Result<SimResult> sim = session_.Simulate(
        program.get(), outcome->config, options_.sim, shared.request.oracle);
    ReleaseCapacity(container_bytes, rm_container);
    // A container reclaimed mid-run voids the attempt regardless of
    // how the simulation itself fared: the work is lost with the
    // container.
    RELM_RETURN_IF_ERROR(ConsumePreemption(shared));
    RELM_RETURN_IF_ERROR(sim.status());
    outcome->sim = std::move(sim).value();
    outcome->simulated = true;
  }
  if (shared.request.execute_real) {
    // Real execution under the granted configuration: the engine's
    // MemoryManager is capped at the plan's CP budget, and the same
    // execution-time admission control applies as for simulation.
    const int64_t container_bytes =
        session_.cluster().ContainerRequestForHeap(outcome->config.cp_heap);
    int64_t rm_container = -1;
    RELM_RETURN_IF_ERROR(AcquireCapacity(
        shared_job, container_bytes, outcome->config.cp_cores, &rm_container));
    RealRunOptions real_opts;
    // Degraded mode: repeated failures fall back to the serial
    // reference engine, trading throughput for the fault-free path.
    real_opts.workers = degraded ? 1 : options_.exec_workers;
    real_opts.memory_budget = outcome->config.CpBudget();
    real_opts.chaos = chaos;
    Result<RealRun> real = session_.ExecuteReal(program.get(), real_opts);
    ReleaseCapacity(container_bytes, rm_container);
    RELM_RETURN_IF_ERROR(ConsumePreemption(shared));
    RELM_RETURN_IF_ERROR(real.status());
    outcome->real = std::move(real).value();
    outcome->executed_real = true;
    if (scope != nullptr) {
      // Per-job attribution of the engine counters. Scope-only Add:
      // the engine already exports these globally (exec.*), so adding
      // them to the registry again would double count (DESIGN.md §13).
      const exec::ExecStats& es = outcome->real.exec;
      scope->Add("exec.parallel_blocks", es.parallel_blocks);
      scope->Add("exec.serial_blocks", es.serial_blocks);
      scope->Add("exec.tasks_scheduled", es.tasks_scheduled);
      scope->Add("exec.spill_bytes", es.spill_bytes);
      scope->Add("exec.reload_bytes", es.reload_bytes);
      scope->Add("exec.evictions", es.evictions);
      scope->Add("exec.high_water_bytes", es.high_water_bytes);
      scope->Add("exec.faults_injected", es.faults_injected);
    }
  }
  ReleaseProgram(script_sig, std::move(program));
  return Status::OK();
}

void JobService::BackoffSleep(double seconds,
                              const JobHandle::Shared& shared) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
    if (shared.cancel_requested.load(std::memory_order_relaxed)) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    const auto remaining = until - std::chrono::steady_clock::now();
    const auto slice =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::milliseconds(20));
    std::this_thread::sleep_for(remaining < slice ? remaining : slice);
  }
}

void JobService::RunJob(const std::shared_ptr<Job>& job) {
  JobHandle::Shared& shared = *job->shared;
  const double wait_seconds = SecondsSince(shared.submit_time);
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.state = JobState::kRunning;
  }
  RELM_HISTOGRAM_OBSERVE("serve.job_wait_seconds", wait_seconds);
  wait_ms_hist_.Observe(wait_seconds * 1e3);
  TenantLocal& tenant_local = TenantLocalFor(shared.tenant);
  tenant_local.wait_ms.Observe(wait_seconds * 1e3);
#if RELM_OBS_ENABLED
  obs::MetricsRegistry::Global()
      .GetHistogram("serve.tenant." + shared.tenant + ".wait_ms")
      ->Observe(wait_seconds * 1e3);
#endif

  // Job-level trace context: bound to this worker thread for the whole
  // job, so every span and counter recorded below — by the optimizer,
  // the engine driver, the memory manager, the chaos injector — carries
  // the job's identity without threading it through their APIs.
  // RunAttempt re-binds with the plan signature and attempt number.
  obs::TraceContext job_ctx;
  job_ctx.job_id = shared.id;
  job_ctx.tenant = shared.tenant;
  job_ctx.sched_decision = job->sched_decision;
  obs::ScopedTraceContext bind_job(job_ctx);
  obs::MetricScope scope(job_ctx);
  RELM_TRACE_SPAN("serve.job");  // job_id/tenant stamped from context

  const auto run_start = std::chrono::steady_clock::now();
  JobOutcome outcome;
  outcome.wait_seconds = wait_seconds;

  const int max_attempts = shared.request.max_attempts > 0
                               ? shared.request.max_attempts
                               : options_.retry.max_attempts;
  const double deadline = shared.request.deadline_seconds;
  // One chaos injector for the whole job: draw counters persist across
  // attempts, so a retry samples fresh fault draws instead of
  // deterministically replaying the attempt that just failed. The seed
  // is perturbed per job id so concurrent jobs see independent
  // schedules.
  std::unique_ptr<exec::ChaosInjector> chaos;
  if (shared.request.execute_real && options_.fault_policy.enabled()) {
    exec::FaultPolicy fp = options_.fault_policy;
    fp.seed ^= shared.id * 0x9E3779B97F4A7C15ULL;
    chaos = std::make_unique<exec::ChaosInjector>(fp);
  }
  Random backoff_rng(options_.fault_policy.seed ^ shared.id);

  Status status = Status::OK();
  int attempt = 0;
  while (true) {
    ++attempt;
    outcome.attempts = attempt;
    if (shared.cancel_requested.load(std::memory_order_relaxed)) {
      status = Status::Cancelled("job " + std::to_string(shared.id) +
                                 " cancelled by caller");
      break;
    }
    if (deadline > 0.0 && SecondsSince(shared.submit_time) >= deadline) {
      status = Status::DeadlineExceeded(
          "job " + std::to_string(shared.id) + " missed its " +
          std::to_string(deadline) + "s deadline before attempt " +
          std::to_string(attempt));
      break;
    }
    const bool degraded = attempt > options_.degrade_after_attempts;
    outcome.degraded = degraded;
    if (degraded) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.degraded_runs++;
      }
      RELM_COUNTER_INC("serve.degraded_runs");
    }
    obs::TraceContext attempt_ctx = job_ctx;
    attempt_ctx.attempt = attempt;
    status = RunAttempt(job->shared, &outcome, degraded, chaos.get(),
                        attempt_ctx, &scope);
    if (status.ok() || !IsRetryable(status)) break;
    if (attempt >= max_attempts) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.retry_exhausted++;
      }
      RELM_COUNTER_INC("serve.retry.exhausted");
      break;
    }
    // Admission to the retry queue: shed the job (typed Overloaded)
    // rather than let an unbounded backlog of backing-off jobs build
    // up behind a fault burst.
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (retrying_ >= options_.max_retrying_jobs) {
        stats_.overload_shed++;
        status = Status::Overloaded(
            "retry queue at capacity (" +
            std::to_string(options_.max_retrying_jobs) +
            "); shedding job after transient failure: " + status.message());
        shed = true;
      } else {
        retrying_++;
        stats_.retries++;
      }
    }
    if (shed) {
      RELM_COUNTER_INC("serve.overload_shed");
      break;
    }
    RELM_COUNTER_INC("serve.retry.attempts");
    double backoff = options_.retry.BackoffSeconds(attempt, &backoff_rng);
    if (deadline > 0.0) {
      // Never sleep past the job's deadline; the next loop iteration
      // then fails it promptly with DeadlineExceeded.
      backoff = std::min(backoff,
                         std::max(0.0, deadline -
                                           SecondsSince(shared.submit_time)));
    }
    RELM_HISTOGRAM_OBSERVE("serve.retry.backoff_seconds", backoff);
    BackoffSleep(backoff, shared);
    {
      std::lock_guard<std::mutex> lock(mu_);
      retrying_--;
      if (stopping_) {
        // Shutdown during backoff: resolve with the transient error so
        // no Await() ever hangs on a job we will not retry.
        break;
      }
    }
  }

  outcome.run_seconds = SecondsSince(run_start);
  RELM_HISTOGRAM_OBSERVE("serve.job_run_seconds", outcome.run_seconds);
  run_ms_hist_.Observe(outcome.run_seconds * 1e3);
  const double e2e_ms = (outcome.wait_seconds + outcome.run_seconds) * 1e3;
  e2e_ms_hist_.Observe(e2e_ms);
  attempts_hist_.Observe(static_cast<double>(outcome.attempts));
  // Global ms-scale mirror: the seconds histograms put every
  // sub-second job in bucket 0, so percentile exports need this one.
  RELM_HISTOGRAM_OBSERVE("serve.job_e2e_ms", e2e_ms);

  // Attempt bookkeeping goes into the per-job scope only; the
  // service-wide equivalents (serve.retry.*, serve.degraded_runs) are
  // already exported above.
  scope.Add("job.attempts", outcome.attempts);
  if (outcome.degraded) scope.Add("job.degraded", 1);
  scope.Set("job.wait_seconds", outcome.wait_seconds);
  scope.Set("job.run_seconds", outcome.run_seconds);
  outcome.telemetry = scope.TakeSnapshot();

  const bool cancelled = status.code() == StatusCode::kCancelled;
  const bool deadline_missed =
      !status.ok() && !cancelled &&
      status.code() == StatusCode::kDeadlineExceeded;
  {
    std::lock_guard<std::mutex> service_lock(mu_);
    outcome.completion_index = ++completion_counter_;
    if (status.ok()) {
      stats_.completed++;
    } else if (cancelled) {
      stats_.cancelled++;
    } else {
      stats_.failed++;
      if (deadline_missed) {
        stats_.deadline_misses++;
      }
    }
  }
  if (status.ok()) {
    tenant_local.completed.fetch_add(1, std::memory_order_relaxed);
    RELM_COUNTER_INC("serve.jobs_completed");
  } else if (cancelled) {
    RELM_COUNTER_INC("serve.jobs_cancelled");
  } else {
    RELM_COUNTER_INC("serve.jobs_failed");
    if (deadline_missed) {
      tenant_local.deadline_misses.fetch_add(1, std::memory_order_relaxed);
      RELM_COUNTER_INC("serve.deadline_misses");
#if RELM_OBS_ENABLED
      TenantCounterAdd(shared.tenant, ".deadline_misses", 1);
#endif
    }
  }
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.error = std::move(status);
    shared.outcome = std::move(outcome);
    shared.state = shared.error.ok()
                       ? JobState::kCompleted
                       : (cancelled ? JobState::kCancelled
                                    : JobState::kFailed);
  }
  shared.done_cv.notify_all();
}

}  // namespace serve
}  // namespace relm

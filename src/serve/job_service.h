#ifndef RELM_SERVE_JOB_SERVICE_H_
#define RELM_SERVE_JOB_SERVICE_H_

// Concurrent job service over one simulated cluster: accepts DML
// submissions from many client threads, runs them through a bounded
// worker pool with per-tenant FIFO fairness, and gates execution with
// two admission controls — queue depth at submit time and the summed
// container footprint of granted ResourceConfigs at execution time.
// Submissions return JobHandle futures carrying status, optimizer
// stats/trace, and the simulated run. Compilation and what-if costing
// read through the shared PlanCache, so a service under steady traffic
// spends its cycles on new programs, not on re-deriving plans it
// already knows.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/plan_cache.h"
#include "core/resource_optimizer.h"
#include "mrsim/cluster_simulator.h"

namespace relm {
namespace serve {

/// Configuration of the job service.
struct ServeOptions {
  /// Worker threads executing admitted jobs.
  int num_workers = 4;
  /// Admission control (queue depth): maximum jobs queued or running
  /// across all tenants; Submit returns ResourceError beyond this.
  int max_pending_jobs = 256;
  /// Per-tenant cap on queued jobs (one tenant cannot monopolize the
  /// admission window).
  int max_queued_per_tenant = 64;
  /// Admission control (memory): cap on the summed AM container
  /// footprint of concurrently executing jobs. <= 0 selects the
  /// simulated cluster's total memory.
  int64_t max_inflight_container_bytes = 0;
  /// Run the measured cluster simulation for each job. When false, jobs
  /// stop after optimization + cost estimation (what-if service mode).
  bool simulate = true;
  /// Cap on finished program instances parked for reuse across jobs
  /// (FIFO-evicted at capacity, so instances under stale script
  /// signatures age out). 0 disables the pool.
  int max_pooled_programs = 64;
  /// Execution-engine workers for jobs that execute for real
  /// (JobRequest::execute_real). > 0 requests the process-wide
  /// kernel/DAG worker pool size at service start — one shared pool,
  /// not one per job; 0 leaves the process default untouched. The pool
  /// is process-global, so the first configuration to build it wins: a
  /// service constructed while the pool is already live at a different
  /// size keeps the existing pool (with a warning) rather than
  /// rebuilding it from under in-flight engine work.
  int exec_workers = 0;
  /// Plan/what-if cache shared by all workers (not owned). nullptr
  /// selects PlanCache::Global().
  PlanCache* plan_cache = nullptr;
  /// Optimizer/simulator settings applied to every job.
  OptimizerOptions optimizer;
  SimOptions sim;

  /// Rejects nonsensical combinations (non-positive worker count or
  /// admission limits, invalid nested options) with InvalidArgument.
  /// Run by the JobService constructor-time Start(); also available to
  /// callers directly.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  ServeOptions& WithWorkers(int workers) {
    num_workers = workers;
    return *this;
  }
  ServeOptions& WithMaxPendingJobs(int jobs) {
    max_pending_jobs = jobs;
    return *this;
  }
  ServeOptions& WithMaxQueuedPerTenant(int jobs) {
    max_queued_per_tenant = jobs;
    return *this;
  }
  ServeOptions& WithMaxInflightContainerBytes(int64_t bytes) {
    max_inflight_container_bytes = bytes;
    return *this;
  }
  ServeOptions& WithSimulation(bool enabled) {
    simulate = enabled;
    return *this;
  }
  ServeOptions& WithMaxPooledPrograms(int programs) {
    max_pooled_programs = programs;
    return *this;
  }
  ServeOptions& WithExecWorkers(int workers) {
    exec_workers = workers;
    return *this;
  }
  ServeOptions& WithPlanCache(PlanCache* cache) {
    plan_cache = cache;
    return *this;
  }
  ServeOptions& WithOptimizer(OptimizerOptions opts) {
    optimizer = std::move(opts);
    return *this;
  }
  ServeOptions& WithSim(SimOptions opts) {
    sim = std::move(opts);
    return *this;
  }
};

/// Metadata-only input registered with a submission (benchmark scale).
struct InputSpec {
  std::string path;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
};

/// One DML submission.
struct JobRequest {
  std::string source;  // DML source text
  ScriptArgs args;
  /// Inputs to register in the service's HDFS namespace before
  /// compiling (idempotent for identical metadata).
  std::vector<InputSpec> inputs;
  /// True characteristics of data-dependent results for the simulator.
  SymbolMap oracle;
  /// Also execute the program for real through the unified engine under
  /// the granted configuration's CP budget (all read() inputs must have
  /// payloads registered, e.g. via session().RegisterMatrix).
  bool execute_real = false;
};

enum class JobState {
  kQueued = 0,
  kRunning,
  kCompleted,
  kFailed,
};

const char* JobStateName(JobState state);

/// Everything a finished job carries: the granted configuration, the
/// optimizer's statistics and decision trace, the cost estimate, and
/// (when simulation is on) the measured run.
struct JobOutcome {
  ResourceConfig config;
  OptimizerStats opt_stats;
  double estimated_cost_seconds = 0.0;
  bool simulated = false;
  SimResult sim;
  /// Real in-process execution (JobRequest::execute_real): printed
  /// output and engine counters from the run under the granted budget.
  bool executed_real = false;
  RealRun real;
  /// Wall-clock queue wait and service time inside the pool.
  double wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Position in the service-wide completion order (1-based) — lets
  /// fairness tests observe interleaving without extra hooks.
  int64_t completion_index = 0;
};

/// Future onto one submitted job. Cheap to copy; all copies observe the
/// same job.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  uint64_t id() const;
  const std::string& tenant() const;
  JobState state() const;

  /// Blocks until the job finishes; returns its outcome, or the error
  /// that failed it. Awaiting an invalid handle is an error, not UB.
  Result<JobOutcome> Await();

 private:
  friend class JobService;
  struct Shared;
  explicit JobHandle(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

/// The concurrent job service. Owns the worker pool and a Session onto
/// the simulated cluster; the Session's HDFS namespace and plan cache
/// are shared by all workers and with any other session handed out via
/// session().
class JobService {
 public:
  explicit JobService(ClusterConfig cc = ClusterConfig::PaperCluster(),
                      ServeOptions options = ServeOptions());
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Non-OK when the options were invalid; every Submit fails fast with
  /// the same status in that case.
  const Status& startup_status() const { return startup_status_; }

  /// The session backing the service (shared cluster + HDFS + cache).
  Session& session() { return session_; }
  const ServeOptions& options() const { return options_; }

  /// Submits a job for `tenant` ("" maps to "default"). Returns the
  /// handle, or ResourceError when admission control rejects the
  /// submission (queue full / tenant quota exceeded), or the startup
  /// error when the service never started.
  Result<JobHandle> Submit(const std::string& tenant, JobRequest request);

  /// Blocks until every accepted job has finished.
  void Drain();

  /// Stops accepting submissions, drains queued jobs, joins workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Service-wide counters (also exported via obs metrics).
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t rejected = 0;
    int queued = 0;
    int running = 0;
    int64_t inflight_container_bytes = 0;
    /// Program instances currently parked in the reuse pool.
    int pooled_programs = 0;
  };
  Stats stats() const;

 private:
  struct Job;

  void WorkerLoop();
  /// Picks the next job round-robin across tenant FIFOs. Returns null
  /// when stopping and empty. Called with mu_ held... (see .cc)
  std::shared_ptr<Job> NextJobLocked() RELM_REQUIRES(mu_);
  void RunJob(const std::shared_ptr<Job>& job);
  /// Program instance pool: a finished job's compiled program is reused
  /// by the next job with the same script signature when the run left
  /// no trace on it (fully size-known, function-free programs — the
  /// simulator never rebuilds those, and exec-type annotations are
  /// deterministically overwritten by every plan compile). Ineligible
  /// programs are simply dropped and the next job compiles/clones.
  /// Parking at capacity evicts the oldest pooled instance (FIFO), so
  /// instances under signatures no job asks for anymore — e.g. stale
  /// after an HDFS metadata change — cannot pin the pool forever.
  Result<std::unique_ptr<MlProgram>> AcquireProgram(uint64_t script_sig,
                                                    const JobRequest& request);
  void ReleaseProgram(uint64_t script_sig,
                      std::unique_ptr<MlProgram> program);
  /// Blocks until `container_bytes` fits under the inflight cap, then
  /// claims it (jobs larger than the cap run exclusively). Grants are
  /// strictly FIFO (ticket-ordered), so a steady stream of small jobs
  /// cannot starve a job that needs the cluster drained first.
  void AcquireCapacity(int64_t container_bytes);
  void ReleaseCapacity(int64_t container_bytes);

  ServeOptions options_;
  Session session_;
  Status startup_status_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty / stop
  std::condition_variable drain_cv_;  // Drain(): all jobs finished
  std::condition_variable capacity_cv_;
  bool stopping_ RELM_GUARDED_BY(mu_) = false;
  uint64_t next_job_id_ RELM_GUARDED_BY(mu_) = 1;
  int64_t completion_counter_ RELM_GUARDED_BY(mu_) = 0;
  // Per-tenant FIFO queues plus the round-robin order of tenants that
  // currently have queued work.
  std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_
      RELM_GUARDED_BY(mu_);
  std::deque<std::string> tenant_rr_ RELM_GUARDED_BY(mu_);
  int queued_ RELM_GUARDED_BY(mu_) = 0;
  int running_ RELM_GUARDED_BY(mu_) = 0;
  int64_t inflight_container_bytes_ RELM_GUARDED_BY(mu_) = 0;
  // FIFO order of capacity grants: each AcquireCapacity takes a ticket
  // and is admitted only when its ticket is the one being served.
  uint64_t capacity_next_ticket_ RELM_GUARDED_BY(mu_) = 0;
  uint64_t capacity_serving_ RELM_GUARDED_BY(mu_) = 0;
  Stats stats_ RELM_GUARDED_BY(mu_);

  mutable std::mutex pool_mu_;
  std::map<uint64_t, std::vector<std::unique_ptr<MlProgram>>> program_pool_
      RELM_GUARDED_BY(pool_mu_);
  // Pooled instances in parking order (one entry per instance); the
  // front is the FIFO eviction victim when the pool is at capacity.
  std::deque<uint64_t> pool_fifo_ RELM_GUARDED_BY(pool_mu_);
  size_t pooled_instances_ RELM_GUARDED_BY(pool_mu_) = 0;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace relm

#endif  // RELM_SERVE_JOB_SERVICE_H_

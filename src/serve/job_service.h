#ifndef RELM_SERVE_JOB_SERVICE_H_
#define RELM_SERVE_JOB_SERVICE_H_

// Concurrent job service over one simulated cluster: accepts DML
// submissions from many client threads and runs them through a bounded
// worker pool. Queueing, ordering, and admission are delegated to a
// pluggable scheduling policy (sched/scheduler.h): round-robin
// per-tenant FIFO fairness by default, or cost-aware multi-tenant SLO
// scheduling with per-tenant quotas, deadline-driven (least-slack)
// ordering from cached what-if runtime estimates, and quota-driven
// container preemption. Execution capacity is gated either by the
// summed container footprint of granted ResourceConfigs (FIFO byte
// cap) or by a per-node ResourceManager with priority preemption,
// whichever the policy asks for. Submissions return JobHandle futures
// carrying status, optimizer stats/trace, and the simulated run.
// Compilation and what-if costing read through the shared PlanCache,
// so a service under steady traffic spends its cycles on new programs,
// not on re-deriving plans it already knows.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cost_oracle.h"
#include "core/plan_cache.h"
#include "core/resource_optimizer.h"
#include "exec/fault_hooks.h"
#include "mrsim/cluster_simulator.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "sched/scheduler.h"
#include "yarn/resource_manager.h"

namespace relm {
namespace serve {

/// What JobService admission does with a job whose static dataflow peak
/// bound (analysis/dataflow.h, resident model) exceeds the CP budget of
/// the granted resource configuration. The bound is consulted only when
/// it is finite (`PeakMemory::bounded`): unknown sizes mean "no static
/// verdict", never a rejection.
enum class StaticBoundPolicy {
  /// Ignore the static bound (default: existing behavior).
  kOff = 0,
  /// Fail the job with ResourceError before simulation/execution —
  /// predicted spill is treated as an undersized grant.
  kReject,
  /// Admit, but force the serial reference engine for real execution
  /// (parallel instruction scheduling multiplies peak residency by
  /// holding several working sets at once).
  kDegradeSerial,
};

/// Configuration of the job service.
struct ServeOptions {
  /// Worker threads executing admitted jobs.
  int num_workers = 4;
  /// Admission control (queue depth): maximum jobs queued or running
  /// across all tenants; Submit returns ResourceError beyond this.
  int max_pending_jobs = 256;
  /// Per-tenant cap on queued jobs (one tenant cannot monopolize the
  /// admission window).
  int max_queued_per_tenant = 64;
  /// Admission control (memory): cap on the summed AM container
  /// footprint of concurrently executing jobs. <= 0 selects the
  /// simulated cluster's total memory. Consulted only in the FIFO
  /// byte-cap capacity mode; the preemptive-RM mode gates on per-node
  /// placement instead.
  int64_t max_inflight_container_bytes = 0;
  /// Scheduling policy for queued jobs (DESIGN.md §16). kRoundRobin
  /// preserves the pre-refactor per-tenant FIFO fairness; kCostAware
  /// adds per-tenant quotas, deadline-aware least-slack ordering driven
  /// by cached what-if cost estimates, and priority preemption of
  /// over-quota tenants' containers.
  sched::SchedulerPolicy scheduler = sched::SchedulerPolicy::kRoundRobin;
  /// Per-tenant resource quotas, consulted by the cost-aware policy
  /// only. Tenants absent from the map are unlimited. Quotas are
  /// elastic: over-quota work still runs when nothing in-quota is
  /// runnable, but is dispatched last and its containers are
  /// preemptible by in-quota allocations.
  std::map<std::string, sched::TenantQuota> tenant_quotas;
  /// Escape hatch for custom policies: when set, the service constructs
  /// its scheduler through this factory and ignores `scheduler`.
  /// Returning nullptr fails service startup with InvalidArgument.
  std::function<std::unique_ptr<sched::Scheduler>(
      const sched::SchedulerLimits&,
      const std::map<std::string, sched::TenantQuota>&)>
      scheduler_factory;
  /// Run the measured cluster simulation for each job. When false, jobs
  /// stop after optimization + cost estimation (what-if service mode).
  bool simulate = true;
  /// Cap on finished program instances parked for reuse across jobs
  /// (FIFO-evicted at capacity, so instances under stale script
  /// signatures age out). 0 disables the pool.
  int max_pooled_programs = 64;
  /// Execution-engine workers for jobs that execute for real
  /// (JobRequest::execute_real). > 0 requests the process-wide
  /// kernel/DAG worker pool size at service start — one shared pool,
  /// not one per job; 0 leaves the process default untouched. The pool
  /// is process-global, so the first configuration to build it wins: a
  /// service constructed while the pool is already live at a different
  /// size keeps the existing pool (with a warning) rather than
  /// rebuilding it from under in-flight engine work.
  int exec_workers = 0;
  /// Retry policy for `execute_real` jobs that fail with a transient
  /// (retryable) error: each retry re-runs the full attempt —
  /// including re-acquiring execution capacity, so a retrying job
  /// cannot starve other tenants — after a jittered exponential
  /// backoff. Non-retryable failures and simulate-only jobs never
  /// retry. Container preemption resolves the victim's attempt with a
  /// retryable Unavailable, so preempted jobs re-run through the same
  /// machinery.
  RetryPolicy retry;
  /// Cap on jobs concurrently sitting in retry backoff. A transient
  /// failure arriving while the retry queue is full is shed instead of
  /// retried: the job fails fast with a typed Overloaded status. 0
  /// sheds every would-be retry (retries effectively disabled under
  /// load).
  int max_retrying_jobs = 16;
  /// Graceful degradation: retry attempts after the first
  /// `degrade_after_attempts` run with the serial reference engine
  /// (workers = 1) instead of the parallel scheduler, so repeated
  /// parallel-path failures cannot burn every attempt. >= 1.
  int degrade_after_attempts = 2;
  /// Admission on the static dataflow peak bound: what to do when a
  /// job's statically bounded resident peak exceeds the granted
  /// configuration's CP budget (predicted spill before a single
  /// instruction runs). Off by default.
  StaticBoundPolicy static_bound_policy = StaticBoundPolicy::kOff;
  /// Chaos injection applied to `execute_real` runs (fault-tolerance
  /// testing; off by default). Each job gets its own injector whose
  /// draw counters persist across that job's retries.
  exec::FaultPolicy fault_policy;
  /// Plan/what-if cache shared by all workers (not owned). nullptr
  /// selects PlanCache::Global().
  PlanCache* plan_cache = nullptr;
  /// Persistent plan-artifact store opened by the service's backing
  /// Session and attached to the shared plan cache, so a restarted
  /// fleet node (or a sibling process pointed at the same artifact)
  /// serves its first jobs from warm plans instead of full compiles.
  /// Empty path (the default) leaves persistence off.
  ArtifactStoreOptions artifact_store;
  /// Optimizer/simulator settings applied to every job.
  OptimizerOptions optimizer;
  SimOptions sim;

  /// Rejects nonsensical combinations (non-positive worker count or
  /// admission limits, invalid nested options) with InvalidArgument.
  /// Run by the JobService constructor-time Start(); also available to
  /// callers directly.
  Status Validate() const;

  // ---- chainable named setters (builder-style construction) ----
  ServeOptions& WithWorkers(int workers) {
    num_workers = workers;
    return *this;
  }
  ServeOptions& WithMaxPendingJobs(int jobs) {
    max_pending_jobs = jobs;
    return *this;
  }
  ServeOptions& WithMaxQueuedPerTenant(int jobs) {
    max_queued_per_tenant = jobs;
    return *this;
  }
  ServeOptions& WithMaxInflightContainerBytes(int64_t bytes) {
    max_inflight_container_bytes = bytes;
    return *this;
  }
  ServeOptions& WithScheduler(sched::SchedulerPolicy policy) {
    scheduler = policy;
    return *this;
  }
  ServeOptions& WithTenantQuota(const std::string& tenant,
                                sched::TenantQuota quota) {
    tenant_quotas[tenant] = quota;
    return *this;
  }
  ServeOptions& WithSchedulerFactory(
      std::function<std::unique_ptr<sched::Scheduler>(
          const sched::SchedulerLimits&,
          const std::map<std::string, sched::TenantQuota>&)>
          factory) {
    scheduler_factory = std::move(factory);
    return *this;
  }
  ServeOptions& WithSimulation(bool enabled) {
    simulate = enabled;
    return *this;
  }
  ServeOptions& WithMaxPooledPrograms(int programs) {
    max_pooled_programs = programs;
    return *this;
  }
  ServeOptions& WithExecWorkers(int workers) {
    exec_workers = workers;
    return *this;
  }
  ServeOptions& WithRetry(RetryPolicy policy) {
    retry = policy;
    return *this;
  }
  ServeOptions& WithMaxRetryingJobs(int jobs) {
    max_retrying_jobs = jobs;
    return *this;
  }
  ServeOptions& WithDegradeAfterAttempts(int attempts) {
    degrade_after_attempts = attempts;
    return *this;
  }
  ServeOptions& WithStaticBoundPolicy(StaticBoundPolicy policy) {
    static_bound_policy = policy;
    return *this;
  }
  ServeOptions& WithFaultPolicy(exec::FaultPolicy policy) {
    fault_policy = policy;
    return *this;
  }
  ServeOptions& WithPlanCache(PlanCache* cache) {
    plan_cache = cache;
    return *this;
  }
  ServeOptions& WithArtifactStore(ArtifactStoreOptions store) {
    artifact_store = std::move(store);
    return *this;
  }
  ServeOptions& WithOptimizer(OptimizerOptions opts) {
    optimizer = std::move(opts);
    return *this;
  }
  ServeOptions& WithSim(SimOptions opts) {
    sim = std::move(opts);
    return *this;
  }
};

/// Metadata-only input registered with a submission (benchmark scale).
struct InputSpec {
  std::string path;
  int64_t rows = 0;
  int64_t cols = 0;
  double sparsity = 1.0;
};

/// One DML submission.
struct JobRequest {
  std::string source;  // DML source text
  ScriptArgs args;
  /// Inputs to register in the service's HDFS namespace before
  /// compiling (idempotent for identical metadata).
  std::vector<InputSpec> inputs;
  /// True characteristics of data-dependent results for the simulator.
  SymbolMap oracle;
  /// Also execute the program for real through the unified engine under
  /// the granted configuration's CP budget (all read() inputs must have
  /// payloads registered, e.g. via session().RegisterMatrix).
  bool execute_real = false;
  /// Wall-clock deadline measured from submission, in seconds; <= 0
  /// means none. A job whose deadline has passed before an attempt
  /// starts fails with DeadlineExceeded (a running attempt is never
  /// interrupted mid-flight), and retry backoffs never sleep past it.
  /// The cost-aware scheduler orders by slack (deadline minus cached
  /// runtime estimate), so tighter deadlines dispatch earlier.
  double deadline_seconds = 0.0;
  /// Caller-declared urgency (higher wins), consulted by the
  /// cost-aware scheduler for dispatch ordering and container
  /// allocation priority. The round-robin policy ignores it.
  int priority = 0;
  /// Per-job cap on total execution attempts (1 = no retries); 0 uses
  /// the service RetryPolicy's max_attempts.
  int max_attempts = 0;
};

enum class JobState {
  kQueued = 0,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

const char* JobStateName(JobState state);

/// Everything a finished job carries: the granted configuration, the
/// optimizer's statistics and decision trace, the cost estimate, and
/// (when simulation is on) the measured run.
struct JobOutcome {
  ResourceConfig config;
  OptimizerStats opt_stats;
  double estimated_cost_seconds = 0.0;
  bool simulated = false;
  SimResult sim;
  /// Real in-process execution (JobRequest::execute_real): printed
  /// output and engine counters from the run under the granted budget.
  bool executed_real = false;
  RealRun real;
  /// Execution attempts consumed (1 = succeeded without retries) and
  /// whether the final attempt ran degraded (serial fallback).
  int attempts = 1;
  bool degraded = false;
  /// Wall-clock queue wait and service time inside the pool.
  double wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Position in the service-wide completion order (1-based) — lets
  /// fairness tests observe interleaving without extra hooks.
  int64_t completion_index = 0;
  /// Job-scoped telemetry: the job's TraceContext (final attempt,
  /// including the scheduler's dispatch decision tag) and the per-job
  /// counter/gauge deltas the service attributed to it (engine
  /// counters from its real runs, attempt bookkeeping). The global
  /// registry keeps aggregating across jobs; this is the per-job
  /// overlay (DESIGN.md §13).
  obs::MetricScope::Snapshot telemetry;
};

/// Future onto one submitted job. Cheap to copy; all copies observe the
/// same job.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return shared_ != nullptr; }
  uint64_t id() const;
  const std::string& tenant() const;
  JobState state() const;

  /// Blocks until the job finishes; returns its outcome, or the error
  /// that failed it. Awaiting an invalid handle is an error, not UB.
  Result<JobOutcome> Await();

  /// Deadline-aware wait: blocks at most `seconds`, then returns
  /// DeadlineExceeded if the job is still unfinished. The job itself
  /// keeps running — this bounds the *wait*, not the job; combine with
  /// Cancel() to also stop the work.
  Result<JobOutcome> AwaitFor(double seconds);

  /// Requests cancellation. Best-effort and asynchronous: a queued job
  /// resolves kCancelled without running, a job in retry backoff stops
  /// retrying, but an attempt already executing runs to completion —
  /// if that attempt succeeds, the job completes normally (the request
  /// arrived too late). Returns true if the request was recorded while
  /// the job was still unfinished. Idempotent.
  bool Cancel();

 private:
  friend class JobService;
  struct Shared;
  explicit JobHandle(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

/// The concurrent job service. Owns the worker pool and a Session onto
/// the simulated cluster; the Session's HDFS namespace and plan cache
/// are shared by all workers and with any other session handed out via
/// session().
class JobService {
 public:
  explicit JobService(ClusterConfig cc = ClusterConfig::PaperCluster(),
                      ServeOptions options = ServeOptions());
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Non-OK when the options were invalid; every Submit fails fast with
  /// the same status in that case.
  const Status& startup_status() const { return startup_status_; }

  /// The session backing the service (shared cluster + HDFS + cache).
  Session& session() { return session_; }
  const ServeOptions& options() const { return options_; }

  /// Submits a job for `tenant` ("" maps to "default"). Returns the
  /// handle, or ResourceError when admission control rejects the
  /// submission (queue full / tenant quota exceeded), or the startup
  /// error when the service never started.
  Result<JobHandle> Submit(const std::string& tenant, JobRequest request);

  /// Blocks until every accepted job has finished.
  void Drain();

  /// Stops accepting submissions, drains queued jobs, joins workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Fault injection (preemptive-RM capacity mode only): takes node
  /// `node` of the service's ResourceManager out of service, killing
  /// every container hosted there. Victims' running attempts resolve
  /// with a retryable Unavailable and re-run through the retry
  /// machinery, exactly like preemption victims. Returns the number of
  /// containers killed; 0 in FIFO byte-cap mode or for unknown nodes.
  int InjectNodeLoss(int node);
  /// Returns a lost node to service (no-op in FIFO byte-cap mode).
  Status RestoreNode(int node);

  /// Service-wide counters (also exported via obs metrics).
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t rejected = 0;
    /// Failure-semantics counters (DESIGN.md §12): retry attempts
    /// started, jobs that burned every attempt on transient errors,
    /// jobs cancelled, deadline misses, attempts run in degraded
    /// (serial-fallback) mode, and transient failures shed because the
    /// retry queue was full.
    int64_t retries = 0;
    int64_t retry_exhausted = 0;
    int64_t cancelled = 0;
    int64_t deadline_misses = 0;
    int64_t degraded_runs = 0;
    int64_t overload_shed = 0;
    /// Execution containers reclaimed from their owners before the
    /// attempt finished — preempted by a higher-priority tenant's
    /// allocation or killed by injected node loss (preemptive-RM
    /// capacity mode).
    int64_t preempted = 0;
    int queued = 0;
    int running = 0;
    /// Jobs currently sitting in retry backoff.
    int retrying = 0;
    int64_t inflight_container_bytes = 0;
    /// Program instances currently parked in the reuse pool.
    int pooled_programs = 0;
    /// Exec-pool size the service asked for (options.exec_workers) vs
    /// what is actually live. They differ when the process-wide pool
    /// was already built at another size and TrySetWorkers refused the
    /// resize — previously only a log line; surfaced here so callers
    /// can detect silently-ignored configuration.
    int exec_workers_requested = 0;
    int exec_workers_effective = 0;
    /// Interpolated percentiles over one service-local latency
    /// histogram (obs::Histogram::Percentile). Milliseconds for the
    /// latency histograms; attempt counts for `attempts`.
    struct Slo {
      int64_t count = 0;
      double p50 = 0.0;
      double p95 = 0.0;
      double p99 = 0.0;
    };
    /// SLO latencies of finished jobs: queue wait, in-pool service
    /// time (all attempts + backoffs), end-to-end (wait + run), and
    /// the per-job attempt-count distribution.
    Slo wait_ms;
    Slo run_ms;
    Slo e2e_ms;
    Slo attempts_per_job;
    /// Per-tenant SLO view: the tenant's queue-wait latency
    /// distribution plus its completion / deadline-miss / preemption
    /// counts. Keyed by tenant name, populated as tenants submit; also
    /// exported to the global registry as serve.tenant.<name>.*
    /// metrics (and from there into --metrics-out JSONL dumps).
    struct TenantStats {
      Slo wait_ms;
      int64_t completed = 0;
      int64_t deadline_misses = 0;
      int64_t preemptions = 0;
    };
    std::map<std::string, TenantStats> per_tenant;
    /// Scheduler policy counters (admitted/rejected/dispatched/
    /// held_over_quota) and the policy's name.
    std::string scheduler;
    sched::SchedulerStats sched;
  };
  Stats stats() const;

 private:
  struct Job;
  struct TenantLocal;

  /// Bookkeeping for one live RM container grant (preemptive mode).
  struct ContainerGrant {
    std::shared_ptr<JobHandle::Shared> owner;
    std::string tenant;
    int64_t memory = 0;
    int vcores = 0;
  };

  void WorkerLoop();
  /// Seconds since service start (the scheduler's monotonic epoch).
  double NowSeconds() const;
  /// Asks the scheduler for the next dispatch and resolves it to the
  /// pending job control block. Returns null when nothing should run.
  std::shared_ptr<Job> NextJobLocked() RELM_REQUIRES(mu_);
  /// The attempt loop: runs RunAttempt up to the job's attempt budget,
  /// honoring cancellation, the deadline, retry backoff, load shedding,
  /// and serial-fallback degradation; then resolves the handle.
  void RunJob(const std::shared_ptr<Job>& job);
  /// One full execution attempt (register inputs, compile/acquire,
  /// optimize, simulate and/or execute for real). Capacity is acquired
  /// and released inside, so every retry re-queues for admission.
  /// `ctx` carries the job/attempt identity; it is re-bound with the
  /// compiled plan signature for the duration of the attempt, and the
  /// attempt's engine counters are attributed into `scope`.
  Status RunAttempt(const std::shared_ptr<JobHandle::Shared>& shared,
                    JobOutcome* outcome, bool degraded,
                    exec::ChaosInjector* chaos, obs::TraceContext ctx,
                    obs::MetricScope* scope);
  /// Consumes a pending preemption/node-loss flag on the job: returns
  /// a retryable Unavailable when the job's container was reclaimed
  /// mid-attempt (the attempt's work is discarded and re-run), OK
  /// otherwise.
  Status ConsumePreemption(JobHandle::Shared& shared);
  /// Sleeps up to `seconds` in small slices, returning early on
  /// cancellation or service shutdown.
  void BackoffSleep(double seconds, const JobHandle::Shared& shared);
  /// Program instance pool: a finished job's compiled program is reused
  /// by the next job with the same script signature when the run left
  /// no trace on it (fully size-known, function-free programs — the
  /// simulator never rebuilds those, and exec-type annotations are
  /// deterministically overwritten by every plan compile). Ineligible
  /// programs are simply dropped and the next job compiles/clones.
  /// Parking at capacity evicts the oldest pooled instance (FIFO), so
  /// instances under signatures no job asks for anymore — e.g. stale
  /// after an HDFS metadata change — cannot pin the pool forever.
  Result<std::unique_ptr<MlProgram>> AcquireProgram(uint64_t script_sig,
                                                    const JobRequest& request);
  void ReleaseProgram(uint64_t script_sig,
                      std::unique_ptr<MlProgram> program);
  /// Claims execution capacity for one attempt. In FIFO byte-cap mode,
  /// blocks until `container_bytes` fits under the inflight cap with
  /// strictly FIFO (ticket-ordered) grants, so a steady stream of
  /// small jobs cannot starve a job that needs the cluster drained
  /// first; `*rm_container` stays -1. In preemptive-RM mode, places a
  /// container through the service ResourceManager at the scheduler's
  /// AllocationPriority — preempting over-quota tenants' containers
  /// when no node has room — and returns its id in `*rm_container`.
  /// Non-OK only for permanently unsatisfiable requests.
  Status AcquireCapacity(const std::shared_ptr<JobHandle::Shared>& shared,
                         int64_t container_bytes, int vcores,
                         int64_t* rm_container);
  void ReleaseCapacity(int64_t container_bytes, int64_t rm_container);
  /// Reclaims a preempted/killed container's grant: flags the owner
  /// (its attempt resolves retryably), releases quota usage, counts
  /// the preemption against the owning tenant.
  void ReclaimVictimLocked(const Container& victim) RELM_REQUIRES(mu_);
  /// Per-tenant stats slot (created on first use; pointers stable).
  TenantLocal& TenantLocalFor(const std::string& tenant);

  ServeOptions options_;
  Session session_;
  Status startup_status_;
  /// Read-through adapter over the session's PlanCache: records each
  /// optimization's winning what-if grid point so Submit can schedule
  /// repeat scripts with a cached runtime estimate (never recomputed).
  PlanCacheCostOracle cost_oracle_;
  /// Service start; SchedEntry times are seconds on this epoch.
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty / stop
  std::condition_variable drain_cv_;  // Drain(): all jobs finished
  std::condition_variable capacity_cv_;
  bool stopping_ RELM_GUARDED_BY(mu_) = false;
  uint64_t next_job_id_ RELM_GUARDED_BY(mu_) = 1;
  int64_t completion_counter_ RELM_GUARDED_BY(mu_) = 0;
  /// The scheduling policy. NOT internally synchronized: every call is
  /// serialized under mu_ (the policy's threading contract).
  std::unique_ptr<sched::Scheduler> scheduler_ RELM_GUARDED_BY(mu_);
  /// Admitted-but-not-dispatched jobs by id; the scheduler owns the
  /// ordering, this map owns the control blocks.
  std::map<uint64_t, std::shared_ptr<Job>> pending_ RELM_GUARDED_BY(mu_);
  /// Per-node container accounting for the preemptive capacity mode
  /// (null when the policy asked for the FIFO byte cap).
  std::unique_ptr<ResourceManager> am_rm_ RELM_GUARDED_BY(mu_);
  std::map<int64_t, ContainerGrant> container_grants_ RELM_GUARDED_BY(mu_);
  int queued_ RELM_GUARDED_BY(mu_) = 0;
  int running_ RELM_GUARDED_BY(mu_) = 0;
  int retrying_ RELM_GUARDED_BY(mu_) = 0;
  /// Live size of the shared exec pool observed at startup (immutable
  /// afterwards; reported via Stats::exec_workers_effective).
  int exec_workers_effective_ = 0;
  int64_t inflight_container_bytes_ RELM_GUARDED_BY(mu_) = 0;
  // FIFO order of capacity grants: each AcquireCapacity takes a ticket
  // and is admitted only when its ticket is the one being served.
  uint64_t capacity_next_ticket_ RELM_GUARDED_BY(mu_) = 0;
  uint64_t capacity_serving_ RELM_GUARDED_BY(mu_) = 0;
  Stats stats_ RELM_GUARDED_BY(mu_);
  // Service-local SLO histograms (milliseconds / attempt counts).
  // Internally atomic, so observed and read without mu_; one service's
  // latencies never smear into another's the way the process-global
  // serve.* histograms do.
  obs::Histogram wait_ms_hist_;
  obs::Histogram run_ms_hist_;
  obs::Histogram e2e_ms_hist_;
  obs::Histogram attempts_hist_;
  // Per-tenant SLO slots. tenant_mu_ guards only the map shape; the
  // slots themselves are atomic and mutated lock-free. Lock order:
  // mu_ before tenant_mu_ (never the reverse).
  mutable std::mutex tenant_mu_;
  std::map<std::string, std::unique_ptr<TenantLocal>> tenant_local_
      RELM_GUARDED_BY(tenant_mu_);

  mutable std::mutex pool_mu_;
  std::map<uint64_t, std::vector<std::unique_ptr<MlProgram>>> program_pool_
      RELM_GUARDED_BY(pool_mu_);
  // Pooled instances in parking order (one entry per instance); the
  // front is the FIFO eviction victim when the pool is at capacity.
  std::deque<uint64_t> pool_fifo_ RELM_GUARDED_BY(pool_mu_);
  size_t pooled_instances_ RELM_GUARDED_BY(pool_mu_) = 0;

  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace relm

#endif  // RELM_SERVE_JOB_SERVICE_H_

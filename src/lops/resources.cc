#include "lops/resources.h"

#include <sstream>

#include "common/string_util.h"

namespace relm {

std::string ResourceConfig::ToString() const {
  std::ostringstream os;
  os << "CP " << FormatBytes(cp_heap) << " / MR "
     << FormatBytes(default_mr_heap);
  if (!per_block_mr_heap.empty()) {
    os << " (max " << FormatBytes(MaxMrHeap()) << ", "
       << per_block_mr_heap.size() << " block overrides)";
  }
  return os.str();
}

}  // namespace relm

#ifndef RELM_LOPS_RUNTIME_PROGRAM_H_
#define RELM_LOPS_RUNTIME_PROGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hops/ml_program.h"
#include "lops/resources.h"

namespace relm {

/// One MapReduce job instruction: a set of HOPs piggybacked into a single
/// job, split into map-side and reduce-side work, plus the derived data
/// volumes the cost model and cluster simulator charge for.
struct MRJobInstr {
  std::vector<Hop*> map_ops;     // executed in mappers (topological order)
  std::vector<Hop*> reduce_ops;  // executed in reducers
  bool has_shuffle = false;

  /// Broadcast inputs loaded into every map task (MapMM vectors etc.);
  /// their sum must fit the MR task budget.
  int64_t broadcast_bytes = 0;
  /// HDFS bytes streamed through the mappers (the job's driving input).
  int64_t map_input_bytes = 0;
  /// Bytes moved through the shuffle.
  int64_t shuffle_bytes = 0;
  /// Bytes written back to HDFS by this job (map- or reduce-side).
  int64_t output_bytes = 0;
  /// In-memory CP variables that must be exported to HDFS before the job
  /// can run (name -> serialized bytes).
  std::map<std::string, int64_t> exported_inputs;
  /// Compute volume.
  double map_flops = 0.0;
  double reduce_flops = 0.0;

  std::string ToString() const;
};

/// One runtime instruction: an in-memory CP operator or an MR job.
struct RuntimeInstr {
  enum class Kind { kCp, kMrJob };
  Kind kind = Kind::kCp;
  Hop* hop = nullptr;  // kCp
  MRJobInstr job;      // kMrJob

  std::string ToString() const;
};

/// Runtime plan of one statement block; control blocks carry predicate
/// instructions plus nested plans.
struct RuntimeBlock {
  const StatementBlock* block = nullptr;
  const BlockIR* ir = nullptr;
  std::vector<RuntimeInstr> instrs;  // statements or predicate evaluation
  std::vector<RuntimeBlock> body;
  std::vector<RuntimeBlock> else_body;

  int NumMrJobs() const;
  /// Recursively counts MR jobs including nested blocks.
  int TotalMrJobs() const;

  std::string ToString(int indent = 0) const;
};

/// An executable runtime program for one specific resource configuration.
struct RuntimeProgram {
  ResourceConfig resources;
  std::vector<RuntimeBlock> main;
  std::map<std::string, std::vector<RuntimeBlock>> functions;

  int TotalMrJobs() const;
  std::string ToString() const;
};

}  // namespace relm

#endif  // RELM_LOPS_RUNTIME_PROGRAM_H_

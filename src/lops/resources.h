#ifndef RELM_LOPS_RESOURCES_H_
#define RELM_LOPS_RESOURCES_H_

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "yarn/cluster_config.h"

namespace relm {

/// A resource configuration R_P = (rc, r1, ..., rn): the control-program
/// (AM) max heap plus per-program-block MR task max heaps. Blocks without
/// an explicit entry use the default MR heap. All values are max JVM heap
/// sizes in bytes; the actual YARN container request is 1.5x the heap.
struct ResourceConfig {
  int64_t cp_heap = 512 * kMB;
  int64_t default_mr_heap = 512 * kMB;
  std::map<int, int64_t> per_block_mr_heap;  // generic block id -> heap
  /// Control-program threads (the paper's "additional resources beyond
  /// memory" extension; 1 = the paper's single-threaded CP runtime).
  /// More cores speed up CP compute sub-linearly but shrink the
  /// effective operation memory budget (per-thread intermediates).
  int cp_cores = 1;

  ResourceConfig() = default;
  ResourceConfig(int64_t cp, int64_t mr, int cores = 1)
      : cp_heap(cp), default_mr_heap(mr), cp_cores(cores) {}

  /// MR task heap for a given generic block.
  int64_t MrHeapForBlock(int block_id) const {
    auto it = per_block_mr_heap.find(block_id);
    return it != per_block_mr_heap.end() ? it->second : default_mr_heap;
  }

  /// Largest MR heap across all blocks (reported as "max MR size").
  int64_t MaxMrHeap() const {
    int64_t m = default_mr_heap;
    for (const auto& [id, heap] : per_block_mr_heap) {
      m = std::max(m, heap);
    }
    return m;
  }

  /// Memory-budget shrink factor per additional CP thread (each thread
  /// keeps private partial results / row partitions).
  static constexpr double kPerCoreMemoryOverhead = 0.15;
  /// Sub-linear compute scaling exponent for multi-threaded CP ops.
  static constexpr double kCoreScalingExponent = 0.85;

  /// Operation memory budget of the control program: 0.7 x heap, reduced
  /// by the per-thread overhead when running multi-threaded.
  int64_t CpBudget() const {
    double budget =
        static_cast<double>(ClusterConfig::BudgetForHeap(cp_heap));
    if (cp_cores > 1) {
      budget /= 1.0 + kPerCoreMemoryOverhead * (cp_cores - 1);
    }
    return static_cast<int64_t>(budget);
  }

  /// Effective CP compute speedup from cp_cores (sub-linear).
  double CpComputeSpeedup() const {
    if (cp_cores <= 1) return 1.0;
    return std::pow(static_cast<double>(cp_cores), kCoreScalingExponent);
  }

  /// Operation memory budget of MR tasks for a block.
  int64_t MrBudgetForBlock(int block_id) const {
    return ClusterConfig::BudgetForHeap(MrHeapForBlock(block_id));
  }

  std::string ToString() const;
};

}  // namespace relm

#endif  // RELM_LOPS_RESOURCES_H_

#include "lops/compiler_backend.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace relm {

int64_t HopDiskBytes(const Hop& hop) {
  if (!hop.is_matrix()) return 16;
  if (!hop.mc().dims_known()) return kUnknownPlaceholderBytes;
  return EstimateSizeOnDisk(hop.mc());
}

int64_t HopMemBytes(const Hop& hop) {
  if (!hop.is_matrix()) return 16;
  if (!hop.mc().dims_known()) return kUnknownPlaceholderBytes;
  return hop.output_mem();
}

namespace {

/// True for hop kinds that become executable operators (as opposed to
/// reads, literals, and function-output markers).
bool IsOperator(const Hop& h) {
  if (h.fused()) return false;  // fused transposes are not materialized
  switch (h.kind()) {
    case HopKind::kLiteral:
    case HopKind::kTransientRead:
    case HopKind::kPersistentRead:
    case HopKind::kFunctionOutput:
      return false;
    default:
      return true;
  }
}

/// Resolves data through fused transposes: the consumer streams X itself.
Hop* ResolveFused(Hop* h) {
  while (h->fused() && !h->inputs().empty()) h = h->input(0);
  return h;
}

/// True for matrix operators that are eligible for MR execution at all.
bool MrCapable(const Hop& h) {
  if (!h.is_matrix() && h.kind() != HopKind::kAggUnary) return false;
  switch (h.kind()) {
    case HopKind::kBinary:
    case HopKind::kUnary:
    case HopKind::kAggUnary:
    case HopKind::kMatMult:
    case HopKind::kReorg:
    case HopKind::kDataGen:
    case HopKind::kTernary:
    case HopKind::kIndexing:
    case HopKind::kLeftIndexing:
    case HopKind::kAppend:
      return true;
    default:
      // solve(), casts, function calls, prints, and writes stay in CP.
      return false;
  }
}

/// MR execution traits of one operator under its chosen physical method.
struct MrOpTraits {
  bool full_shuffle = false;   // repartitions its main input (exclusive)
  bool aggregation = false;    // needs a (cheap) reduce-side aggregation
  int64_t broadcast = 0;       // bytes broadcast to every task
};

/// Decides physical methods for MR operators and returns their traits.
class OperatorSelector {
 public:
  OperatorSelector(int64_t cp_budget, int64_t mr_budget)
      : cp_budget_(cp_budget), mr_budget_(mr_budget) {}

  /// Assigns exec types + physical methods for all operators of the DAG.
  void Run(const HopDag& dag) {
    for (Hop* h : dag.TopoOrder()) {
      if (!IsOperator(*h)) {
        h->set_exec_type(ExecType::kCP);
        continue;
      }
      h->broadcast_input = -1;
      // The simple yet effective heuristic: CP whenever the operation
      // memory estimate fits the CP budget.
      if (!MrCapable(*h) || h->op_mem() <= cp_budget_) {
        h->set_exec_type(ExecType::kCP);
        if (h->kind() == HopKind::kMatMult) {
          h->set_mmult_method(MMultMethod::kCpMM);
        }
        continue;
      }
      h->set_exec_type(ExecType::kMR);
      if (h->kind() == HopKind::kMatMult) SelectMMultMethod(h);
      if (h->kind() == HopKind::kBinary) SelectBinaryMethod(h);
      if (h->kind() == HopKind::kAppend ||
          h->kind() == HopKind::kLeftIndexing) {
        SelectAppendMethod(h);  // broadcast the (small) second input
      }
    }
  }

  /// Traits of an MR operator after selection.
  MrOpTraits Traits(const Hop& h) const {
    MrOpTraits t;
    switch (h.kind()) {
      case HopKind::kMatMult:
        switch (h.mmult_method()) {
          case MMultMethod::kMapMM:
          case MMultMethod::kMapMMChain:
            t.broadcast = BroadcastBytes(h);
            t.aggregation = true;  // block-partial aggregation
            break;
          case MMultMethod::kTSMM:
            t.aggregation = true;
            break;
          case MMultMethod::kCPMM:
          case MMultMethod::kRMM:
            t.full_shuffle = true;
            t.aggregation = true;
            break;
          case MMultMethod::kCpMM:
            break;
        }
        break;
      case HopKind::kBinary:
      case HopKind::kAppend:
      case HopKind::kLeftIndexing:
        if (h.broadcast_input >= 0) {
          t.broadcast = BroadcastBytes(h);
        } else if (h.inputs().size() >= 2 && h.input(0)->is_matrix() &&
                   h.input(1)->is_matrix()) {
          // matrix-matrix without broadcast: co-group via shuffle.
          t.full_shuffle = true;
        }
        break;
      case HopKind::kAggUnary:
        t.aggregation = true;
        break;
      case HopKind::kReorg:
        if (h.reorg_op == ReorgOp::kTranspose) t.full_shuffle = true;
        break;
      case HopKind::kTernary:
        t.full_shuffle = true;  // grouping by category
        t.aggregation = true;
        break;
      case HopKind::kUnary:
      case HopKind::kDataGen:
      case HopKind::kIndexing:
      default:
        break;  // pure map-side
    }
    return t;
  }

 private:
  int64_t BroadcastBytes(const Hop& h) const {
    if (h.broadcast_input < 0) return 0;
    return HopMemBytes(*h.input(h.broadcast_input));
  }

  void SelectMMultMethod(Hop* h) {
    Hop* a = h->input(0);
    Hop* b = h->input(1);
    // TSMM: t(X) %*% X.
    if (a->kind() == HopKind::kReorg &&
        a->reorg_op == ReorgOp::kTranspose && a->input(0) == b) {
      h->set_mmult_method(MMultMethod::kTSMM);
      return;
    }
    // MapMMChain: t(X) %*% (X %*% v) or t(X) %*% (w * (X %*% v)).
    if (a->kind() == HopKind::kReorg &&
        a->reorg_op == ReorgOp::kTranspose) {
      Hop* x = a->input(0);
      Hop* inner = b;
      int64_t chain_bc = 0;
      bool matches = false;
      if (inner->kind() == HopKind::kMatMult && inner->input(0) == x) {
        chain_bc = HopMemBytes(*inner->input(1));
        matches = true;
      } else if (inner->kind() == HopKind::kBinary &&
                 inner->bin_op == BinOp::kMul &&
                 inner->input(1)->kind() == HopKind::kMatMult &&
                 inner->input(1)->input(0) == x) {
        chain_bc = HopMemBytes(*inner->input(0)) +
                   HopMemBytes(*inner->input(1)->input(1));
        matches = true;
      }
      if (matches && chain_bc <= mr_budget_) {
        h->set_mmult_method(MMultMethod::kMapMMChain);
        h->broadcast_input = 1;  // the vector side(s), sizes via traits
        chain_broadcast_[h] = chain_bc;
        return;
      }
    }
    // MapMM: broadcast whichever input fits the task budget.
    int64_t mem_a = HopMemBytes(*a);
    int64_t mem_b = HopMemBytes(*b);
    if (std::min(mem_a, mem_b) <= mr_budget_) {
      h->set_mmult_method(MMultMethod::kMapMM);
      h->broadcast_input = mem_a <= mem_b ? 0 : 1;
      return;
    }
    h->set_mmult_method(MMultMethod::kCPMM);
  }

  void SelectBinaryMethod(Hop* h) {
    if (!h->input(0)->is_matrix() || !h->input(1)->is_matrix()) {
      return;  // matrix-scalar is trivially map-side
    }
    // Map-side binary when the second (vector) operand fits in task memory
    // (broadcast, like broadcast joins in Jaql/Hive).
    int64_t mem_b = HopMemBytes(*h->input(1));
    if (mem_b <= mr_budget_) h->broadcast_input = 1;
  }

  void SelectAppendMethod(Hop* h) {
    int64_t mem_b = HopMemBytes(*h->input(1));
    if (mem_b <= mr_budget_) h->broadcast_input = 1;
  }

 public:
  /// MapMMChain broadcast sizes (vector + optional weight vector).
  int64_t ChainBroadcast(const Hop* h) const {
    auto it = chain_broadcast_.find(h);
    return it != chain_broadcast_.end() ? it->second : 0;
  }

 private:
  int64_t cp_budget_;
  int64_t mr_budget_;
  std::map<const Hop*, int64_t> chain_broadcast_;
};

/// Piggybacks the MR operators of a DAG into a minimal number of MR jobs
/// (greedy bin packing under job-structure and memory constraints), then
/// emits the block's instruction list in dependency order.
class Piggyback {
 public:
  Piggyback(const OperatorSelector& selector, const SimulatedHdfs* hdfs,
            int64_t mr_budget)
      : selector_(selector), hdfs_(hdfs), mr_budget_(mr_budget) {}

  std::vector<RuntimeInstr> Run(const HopDag& dag) {
    std::vector<Hop*> topo = dag.TopoOrder();

    // ---- 1. group MR operators into jobs ----
    struct Job {
      std::vector<Hop*> ops;
      bool has_full_shuffle = false;
      int64_t broadcast = 0;
      Hop* primary_input = nullptr;  // streamed input shared by the job
    };
    std::vector<Job> jobs;
    std::unordered_map<const Hop*, int> job_of;         // MR hop -> job
    std::unordered_map<const Hop*, std::set<int>> dep_jobs;
    // Direct job-to-job dependencies (for join-time cycle checks).
    std::vector<std::set<int>> job_deps;
    // True if job `from` transitively depends on job `to`.
    std::function<bool(int, int)> job_reaches = [&](int from,
                                                    int to) -> bool {
      if (from == to) return true;
      for (int d : job_deps[from]) {
        if (job_reaches(d, to)) return true;
      }
      return false;
    };

    auto primary_stream_input = [&](Hop* h) -> Hop* {
      Hop* best = nullptr;
      int64_t best_bytes = -1;
      for (size_t i = 0; i < h->inputs().size(); ++i) {
        Hop* in = ResolveFused(h->input(i));
        if (!in->is_matrix()) continue;
        if (static_cast<int>(i) == h->broadcast_input) continue;
        int64_t bytes = HopDiskBytes(*in);
        if (bytes > best_bytes) {
          best_bytes = bytes;
          best = in;
        }
      }
      return best;
    };

    for (Hop* h : topo) {
      // Dependency-job propagation (for cycle avoidance).
      std::set<int>& deps = dep_jobs[h];
      for (const auto& in : h->inputs()) {
        const auto& din = dep_jobs[in.get()];
        deps.insert(din.begin(), din.end());
        auto jit = job_of.find(in.get());
        if (jit != job_of.end()) deps.insert(jit->second);
      }
      if (!IsOperator(*h) || h->exec_type() != ExecType::kMR) continue;

      MrOpTraits traits = selector_.Traits(*h);
      if (h->kind() == HopKind::kMatMult &&
          h->mmult_method() == MMultMethod::kMapMMChain) {
        traits.broadcast = selector_.ChainBroadcast(h);
      }

      // Candidate: the single job producing this op's MR inputs; or a
      // scan-sharing job with the same primary input.
      int candidate = -1;
      bool multiple = false;
      for (const auto& in : h->inputs()) {
        auto jit = job_of.find(in.get());
        if (jit == job_of.end()) continue;
        if (candidate >= 0 && jit->second != candidate) multiple = true;
        candidate = jit->second;
      }
      Hop* primary = primary_stream_input(h);
      if (candidate < 0 && !multiple && primary != nullptr) {
        // Scan sharing: join an existing job streaming the same input.
        for (int j = static_cast<int>(jobs.size()) - 1; j >= 0; --j) {
          if (jobs[j].primary_input == primary) {
            candidate = j;
            break;
          }
        }
      }
      // Jobs h would depend on if placed in a new/other job.
      std::set<int> h_dep_jobs;
      for (const auto& in : h->inputs()) {
        const auto& d = dep_jobs[in.get()];
        h_dep_jobs.insert(d.begin(), d.end());
      }
      bool joined = false;
      if (candidate >= 0 && !multiple) {
        Job& j = jobs[candidate];
        bool shuffle_conflict = traits.full_shuffle && j.has_full_shuffle;
        bool budget_ok = j.broadcast + traits.broadcast <= mr_budget_ ||
                         traits.broadcast == 0;
        // Cycle check: joining J may not make J depend on any job that
        // already (transitively) reaches J, and none of h's CP-side
        // ancestors may depend on J itself.
        bool cycle = false;
        for (int dep : h_dep_jobs) {
          if (dep == candidate) continue;
          if (job_reaches(dep, candidate)) cycle = true;
        }
        for (const auto& in : h->inputs()) {
          if (job_of.count(in.get())) continue;  // same-job MR input
          if (dep_jobs[in.get()].count(candidate)) cycle = true;
        }
        if (!shuffle_conflict && budget_ok && !cycle) {
          j.ops.push_back(h);
          j.has_full_shuffle |= traits.full_shuffle;
          j.broadcast += traits.broadcast;
          if (j.primary_input == nullptr) j.primary_input = primary;
          job_of[h] = candidate;
          for (int dep : h_dep_jobs) {
            if (dep != candidate) job_deps[candidate].insert(dep);
          }
          joined = true;
        }
      }
      if (!joined) {
        Job j;
        j.ops.push_back(h);
        j.has_full_shuffle = traits.full_shuffle;
        j.broadcast = traits.broadcast;
        j.primary_input = primary;
        jobs.push_back(std::move(j));
        job_of[h] = static_cast<int>(jobs.size()) - 1;
        job_deps.push_back(h_dep_jobs);
      }
      dep_jobs[h].insert(job_of[h]);
    }

    // ---- 2. derive per-job data volumes ----
    // Consumer map for "does this output leave the job" checks.
    std::unordered_map<const Hop*, std::vector<Hop*>> consumers;
    for (Hop* h : topo) {
      for (const auto& in : h->inputs()) consumers[in.get()].push_back(h);
    }
    std::vector<MRJobInstr> job_instrs(jobs.size());
    for (size_t ji = 0; ji < jobs.size(); ++ji) {
      const Job& j = jobs[ji];
      MRJobInstr& mi = job_instrs[ji];
      std::unordered_set<const Hop*> in_job(j.ops.begin(), j.ops.end());
      bool post_shuffle_seen = false;
      for (Hop* op : j.ops) {
        MrOpTraits traits = selector_.Traits(*op);
        if (op->kind() == HopKind::kMatMult &&
            op->mmult_method() == MMultMethod::kMapMMChain) {
          traits.broadcast = selector_.ChainBroadcast(op);
        }
        bool reduce_side = post_shuffle_seen;
        if (traits.full_shuffle) {
          mi.has_shuffle = true;
          mi.shuffle_bytes += HopDiskBytes(
              op->inputs().empty() ? *op : *op->input(0));
          post_shuffle_seen = true;
          reduce_side = true;  // the repartitioned work lands in reducers
        } else if (traits.aggregation) {
          mi.has_shuffle = true;
          // Partial aggregates are small: one output block per task.
          mi.shuffle_bytes += std::min<int64_t>(HopDiskBytes(*op),
                                                16 * kMB);
        }
        if (reduce_side) {
          mi.reduce_ops.push_back(op);
          mi.reduce_flops += op->ComputeFlops();
        } else {
          mi.map_ops.push_back(op);
          mi.map_flops += op->ComputeFlops();
        }
        // External inputs: streamed bytes + exports of CP-produced data.
        for (size_t i = 0; i < op->inputs().size(); ++i) {
          Hop* in = ResolveFused(op->input(i));
          if (in_job.count(in) || !in->is_matrix()) continue;
          bool broadcast = static_cast<int>(i) == op->broadcast_input;
          int64_t bytes = HopDiskBytes(*in);
          switch (in->kind()) {
            case HopKind::kPersistentRead:
              if (!broadcast) mi.map_input_bytes += bytes;
              break;
            case HopKind::kTransientRead:
              mi.exported_inputs[in->name()] = bytes;
              if (!broadcast) mi.map_input_bytes += bytes;
              break;
            default:
              // CP intermediate: must be exported to HDFS first.
              mi.exported_inputs["#tmp" + std::to_string(in->id())] = bytes;
              if (!broadcast) mi.map_input_bytes += bytes;
              break;
          }
        }
        // Outputs leaving the job (consumed by CP or written).
        bool leaves = false;
        auto cit = consumers.find(op);
        if (cit == consumers.end()) {
          leaves = true;  // sink
        } else {
          for (Hop* other : cit->second) {
            if (!in_job.count(other)) leaves = true;
          }
        }
        if (leaves) mi.output_bytes += HopDiskBytes(*op);
      }
      mi.broadcast_bytes = j.broadcast;
    }

    // ---- 3. emit instructions in dependency order ----
    std::vector<RuntimeInstr> out;
    std::unordered_set<const Hop*> emitted;
    std::vector<bool> job_emitted(jobs.size(), false);
    auto deps_ready = [&](Hop* h) {
      for (const auto& raw : h->inputs()) {
        Hop* in = ResolveFused(raw.get());
        if (IsOperator(*in) && !emitted.count(in)) return false;
      }
      return true;
    };
    auto job_ready = [&](size_t ji) {
      for (Hop* op : jobs[ji].ops) {
        for (const auto& raw : op->inputs()) {
          Hop* in = ResolveFused(raw.get());
          if (!IsOperator(*in)) continue;
          if (job_of.count(in) &&
              job_of[in] == static_cast<int>(ji)) {
            continue;  // intra-job edge
          }
          if (!emitted.count(in)) return false;
        }
      }
      return true;
    };
    // Worklist fixpoint: repeatedly emit ready CP instructions (in topo
    // order) and ready jobs until everything is placed. Roots are
    // traversed in declaration order, so a single topo pass can reach a
    // consumer before the producers of a sibling subtree — the fixpoint
    // handles those cross-subtree dependencies.
    int remaining = 0;
    for (Hop* h : topo) {
      if (IsOperator(*h)) ++remaining;
    }
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (Hop* h : topo) {
        if (!IsOperator(*h) || emitted.count(h)) continue;
        if (h->exec_type() == ExecType::kMR && MrCapable(*h)) {
          size_t ji = static_cast<size_t>(job_of[h]);
          if (job_emitted[ji] || !job_ready(ji)) continue;
          RuntimeInstr ri;
          ri.kind = RuntimeInstr::Kind::kMrJob;
          ri.job = job_instrs[ji];
          out.push_back(std::move(ri));
          for (Hop* op : jobs[ji].ops) {
            emitted.insert(op);
            --remaining;
          }
          job_emitted[ji] = true;
          progress = true;
          continue;
        }
        if (!deps_ready(h)) continue;
        RuntimeInstr ri;
        ri.kind = RuntimeInstr::Kind::kCp;
        ri.hop = h;
        out.push_back(std::move(ri));
        emitted.insert(h);
        --remaining;
        progress = true;
      }
    }
    if (remaining > 0) {
      RELM_ERROR() << "instruction emission: " << remaining
                   << " operator(s) unplaceable (cyclic job dependency)";
    }
    return out;
  }

 private:
  const OperatorSelector& selector_;
  const SimulatedHdfs* hdfs_;
  int64_t mr_budget_;
};

}  // namespace

bool HopIsOperator(const Hop& hop) { return IsOperator(hop); }

bool HopIsMrCapable(const Hop& hop) { return MrCapable(hop); }

Result<RuntimeBlock> CompileBlockPlan(MlProgram* program,
                                      const ClusterConfig& cc,
                                      StatementBlock* block,
                                      const ResourceConfig& resources,
                                      CompileCounters* counters) {
  RuntimeBlock out;
  out.block = block;
  if (!program->has_ir(block->id())) {
    return Status::CompileError("no IR for block " +
                                std::to_string(block->id()));
  }
  BlockIR& ir = program->ir(block->id());
  out.ir = &ir;
  if (counters != nullptr) ++counters->block_compiles;

  int64_t cp_budget = resources.CpBudget();
  int64_t mr_budget = resources.MrBudgetForBlock(block->id());

  OperatorSelector selector(cp_budget, mr_budget);
  selector.Run(ir.dag);
  Piggyback piggyback(selector, program->hdfs(), mr_budget);
  out.instrs = piggyback.Run(ir.dag);

  // Statically removed branches are not compiled into the plan.
  bool skip_then = block->kind() == BlockKind::kIf && ir.taken_branch == 1;
  bool skip_else = block->kind() == BlockKind::kIf && ir.taken_branch == 0;
  if (!skip_then) {
    for (auto& child : block->body) {
      RELM_ASSIGN_OR_RETURN(
          RuntimeBlock cb,
          CompileBlockPlan(program, cc, child.get(), resources, counters));
      out.body.push_back(std::move(cb));
    }
  }
  if (!skip_else) {
    for (auto& child : block->else_body) {
      RELM_ASSIGN_OR_RETURN(
          RuntimeBlock cb,
          CompileBlockPlan(program, cc, child.get(), resources, counters));
      out.else_body.push_back(std::move(cb));
    }
  }
  return out;
}

Result<RuntimeProgram> GenerateRuntimeProgram(MlProgram* program,
                                              const ClusterConfig& cc,
                                              const ResourceConfig& resources,
                                              CompileCounters* counters) {
  RuntimeProgram out;
  out.resources = resources;
  for (auto& blk : program->blocks().main) {
    RELM_ASSIGN_OR_RETURN(
        RuntimeBlock rb,
        CompileBlockPlan(program, cc, blk.get(), resources, counters));
    out.main.push_back(std::move(rb));
  }
  for (auto& [name, fn_blocks] : program->blocks().functions) {
    std::vector<RuntimeBlock> rbs;
    for (auto& blk : fn_blocks) {
      RELM_ASSIGN_OR_RETURN(
          RuntimeBlock rb,
          CompileBlockPlan(program, cc, blk.get(), resources, counters));
      rbs.push_back(std::move(rb));
    }
    out.functions[name] = std::move(rbs);
  }
  return out;
}

}  // namespace relm

#ifndef RELM_LOPS_COMPILER_BACKEND_H_
#define RELM_LOPS_COMPILER_BACKEND_H_

#include <cstdint>

#include "common/status.h"
#include "hops/ml_program.h"
#include "lops/resources.h"
#include "lops/runtime_program.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Counters for optimization-overhead reporting (Table 3).
struct CompileCounters {
  int64_t block_compiles = 0;  // per-block plan (re)generations
};

/// Placeholder size used when the compiler must cost an operator with
/// unknown dimensions (no plan differences arise from unknowns anyway;
/// see the pruning of all-unknown blocks in the resource optimizer).
inline constexpr int64_t kUnknownPlaceholderBytes = 128 * kMB;

/// Serialized (HDFS) size of a hop's output, placeholder when unknown.
int64_t HopDiskBytes(const Hop& hop);
/// In-memory size of a hop's output, placeholder when unknown.
int64_t HopMemBytes(const Hop& hop);

/// True for hop kinds that become executable operators (as opposed to
/// reads, literals, fused transposes, and function-output markers).
/// Exported so the analysis layer audits plans against the same notion
/// of "operator" that operator selection and piggybacking use.
bool HopIsOperator(const Hop& hop);
/// True for matrix operators eligible for MR execution at all; the
/// selection invariant is: exec == CP iff (!HopIsMrCapable || op_mem <=
/// CP budget), so MR-placed operators must satisfy both conjuncts.
bool HopIsMrCapable(const Hop& hop);

/// Compiles the runtime plan for one statement block (and nothing else):
/// operator selection under the block's CP/MR memory budgets, then
/// piggybacking of MR operators into a minimal number of MR jobs.
/// Control blocks compile their predicate plus nested blocks recursively.
Result<RuntimeBlock> CompileBlockPlan(MlProgram* program,
                                      const ClusterConfig& cc,
                                      StatementBlock* block,
                                      const ResourceConfig& resources,
                                      CompileCounters* counters);

/// Compiles the whole program (main + functions) under `resources`.
Result<RuntimeProgram> GenerateRuntimeProgram(MlProgram* program,
                                              const ClusterConfig& cc,
                                              const ResourceConfig& resources,
                                              CompileCounters* counters);

}  // namespace relm

#endif  // RELM_LOPS_COMPILER_BACKEND_H_

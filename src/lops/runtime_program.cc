#include "lops/runtime_program.h"

#include <sstream>

#include "common/string_util.h"

namespace relm {

std::string MRJobInstr::ToString() const {
  std::ostringstream os;
  os << "MR-job[map:";
  for (const Hop* h : map_ops) os << " " << HopKindName(h->kind());
  if (has_shuffle) {
    os << " | shuffle " << FormatBytes(shuffle_bytes) << " | reduce:";
    for (const Hop* h : reduce_ops) os << " " << HopKindName(h->kind());
  }
  os << "] in=" << FormatBytes(map_input_bytes)
     << " bc=" << FormatBytes(broadcast_bytes)
     << " out=" << FormatBytes(output_bytes);
  return os.str();
}

std::string RuntimeInstr::ToString() const {
  if (kind == Kind::kMrJob) return job.ToString();
  std::ostringstream os;
  os << "CP " << hop->ToString();
  return os.str();
}

int RuntimeBlock::NumMrJobs() const {
  int n = 0;
  for (const auto& i : instrs) {
    if (i.kind == RuntimeInstr::Kind::kMrJob) ++n;
  }
  return n;
}

int RuntimeBlock::TotalMrJobs() const {
  int n = NumMrJobs();
  for (const auto& b : body) n += b.TotalMrJobs();
  for (const auto& b : else_body) n += b.TotalMrJobs();
  return n;
}

std::string RuntimeBlock::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(indent * 2, ' ');
  os << pad << "block #" << (block ? block->id() : -1) << " ("
     << BlockKindName(block ? block->kind() : BlockKind::kGeneric) << ")\n";
  for (const auto& i : instrs) os << pad << "  " << i.ToString() << "\n";
  for (const auto& b : body) os << b.ToString(indent + 1);
  if (!else_body.empty()) {
    os << pad << "else:\n";
    for (const auto& b : else_body) os << b.ToString(indent + 1);
  }
  return os.str();
}

int RuntimeProgram::TotalMrJobs() const {
  int n = 0;
  for (const auto& b : main) n += b.TotalMrJobs();
  for (const auto& [name, blocks] : functions) {
    for (const auto& b : blocks) n += b.TotalMrJobs();
  }
  return n;
}

std::string RuntimeProgram::ToString() const {
  std::ostringstream os;
  for (const auto& b : main) os << b.ToString();
  for (const auto& [name, blocks] : functions) {
    os << "function " << name << ":\n";
    for (const auto& b : blocks) os << b.ToString(1);
  }
  return os.str();
}

}  // namespace relm

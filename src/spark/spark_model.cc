#include "spark/spark_model.h"

#include <algorithm>
#include <cmath>

namespace relm {

const char* SparkPlanName(SparkPlan plan) {
  return plan == SparkPlan::kHybrid ? "Hybrid" : "Full";
}

namespace {

/// Time of one distributed pass over X: first pass ingests from HDFS;
/// later passes scan the cache when X fits, otherwise they hit disk with
/// the spill penalty.
double PassSeconds(const SparkConfig& spark, int64_t x_bytes, bool cached,
                   bool first_pass) {
  double aggregate_ingest =
      spark.ingest_bps * static_cast<double>(spark.num_executors);
  double aggregate_scan =
      spark.memory_scan_bps * static_cast<double>(spark.num_executors);
  double aggregate_reread =
      spark.reread_bps * static_cast<double>(spark.num_executors);
  if (first_pass) {
    return static_cast<double>(x_bytes) / aggregate_ingest;
  }
  if (cached) {
    return static_cast<double>(x_bytes) / aggregate_scan;
  }
  return spark.spill_penalty * static_cast<double>(x_bytes) /
         aggregate_reread;
}

}  // namespace

SparkRunEstimate EstimateSparkRun(const SparkConfig& spark,
                                  const ClusterConfig& cc,
                                  const SparkWorkload& workload,
                                  SparkPlan plan) {
  SparkRunEstimate out;
  int64_t x_mem = EstimateSizeInMemory(workload.x);
  int64_t x_disk = EstimateSizeOnDisk(workload.x);
  out.x_cached = x_mem <= spark.TotalCacheBytes();

  double time = spark.app_startup_seconds;
  int stages = 0;

  // Initial scan: t(X) %*% Y style pass + caching.
  stages += 1;
  time += PassSeconds(spark, x_disk, out.x_cached, /*first_pass=*/true);

  // Driver-side scalar/vector work per iteration (hybrid) or additional
  // distributed stages (full).
  int64_t vec_bytes = EstimateSizeOnDisk(
      MatrixCharacteristics(workload.x.rows(), 1,
                            workload.x.rows()));
  double driver_vec_op =
      static_cast<double>(vec_bytes) / 4e9;  // in-memory vector op

  for (int it = 0; it < workload.outer_iterations; ++it) {
    // Distributed passes over X.
    for (int p = 0; p < workload.x_passes_per_iteration; ++p) {
      stages += 1;
      time += spark.stage_latency_seconds;
      time += PassSeconds(spark, out.x_cached ? x_mem : x_disk,
                          out.x_cached, /*first_pass=*/false);
    }
    int vector_ops = workload.vector_ops_per_outer +
                     workload.inner_iterations *
                         workload.vector_ops_per_inner;
    if (plan == SparkPlan::kHybrid) {
      // Vector operations run in the driver.
      time += vector_ops * driver_vec_op;
    } else {
      // Every vector operation becomes an RDD stage: per-stage latency
      // dominates on small data, and each aggregate adds a tiny shuffle.
      for (int v = 0; v < vector_ops; ++v) {
        stages += 1;
        time += spark.stage_latency_seconds;
        time += static_cast<double>(vec_bytes) /
                (spark.ingest_bps * spark.num_executors);
      }
    }
  }
  (void)cc;
  out.seconds = time;
  out.stages = stages;
  return out;
}

int MaxConcurrentSparkApps(const SparkConfig& spark,
                           const ClusterConfig& cc) {
  // Each application holds driver + all executors for its lifetime.
  int64_t per_app =
      spark.driver_memory +
      static_cast<int64_t>(spark.num_executors) * spark.executor_memory;
  int64_t capacity = cc.total_memory();
  return std::max(1, static_cast<int>(capacity / std::max<int64_t>(
                                                     per_app, 1)));
}

}  // namespace relm

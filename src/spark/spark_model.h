#ifndef RELM_SPARK_SPARK_MODEL_H_
#define RELM_SPARK_SPARK_MODEL_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "matrix/matrix_characteristics.h"
#include "yarn/cluster_config.h"

namespace relm {

/// Static Spark deployment (Appendix D setup: yarn-cluster mode, 6
/// executors of 55 GB / 24 cores, 20 GB driver; resources are held for
/// the lifetime of the application).
struct SparkConfig {
  int num_executors = 6;
  int64_t executor_memory = 55 * kGB;
  int executor_cores = 24;
  int64_t driver_memory = 20 * kGB;

  /// Application spin-up: driver + executor containers + scheduler.
  double app_startup_seconds = 20.0;
  /// Per-stage scheduling latency (much lower than an MR job).
  double stage_latency_seconds = 0.2;
  /// Fraction of executor memory usable for RDD caching.
  double cache_fraction = 0.6;
  /// Aggregate in-memory scan bandwidth per executor (bytes/s) for
  /// cached RDD passes.
  double memory_scan_bps = 6e9;
  /// Ingestion bandwidth per executor for the first HDFS read including
  /// text parsing / deserialization into RDD partitions (bytes/s).
  double ingest_bps = 0.09e9;
  /// Re-read bandwidth per executor for disk-resident passes once the
  /// data has been serialized into binary partitions (bytes/s).
  double reread_bps = 0.4e9;
  /// Penalty factor on disk-resident passes (eviction, recomputation)
  /// when the working set exceeds the cache.
  double spill_penalty = 1.5;

  int64_t TotalCacheBytes() const {
    return static_cast<int64_t>(cache_fraction *
                                static_cast<double>(executor_memory)) *
           num_executors;
  }
  int total_cores() const { return num_executors * executor_cores; }
};

/// Plan variants of Appendix D: Hybrid keeps only operations on the big
/// X distributed (everything else in the driver); Full makes every
/// matrix operation an RDD operation.
enum class SparkPlan { kHybrid, kFull };

const char* SparkPlanName(SparkPlan plan);

/// Abstract iterative-workload description (an L2SVM-shaped script).
struct SparkWorkload {
  MatrixCharacteristics x;   // the big input
  int outer_iterations = 5;
  int inner_iterations = 5;  // line-search style inner loop
  /// Distributed passes over X per outer iteration in the hybrid plan
  /// (e.g. X %*% s and t(X) %*% (out * Y)).
  int x_passes_per_iteration = 2;
  /// Driver-side (vector) operations per outer iteration, counted as
  /// stages in the Full plan.
  int vector_ops_per_outer = 10;
  int vector_ops_per_inner = 6;
};

/// Estimated execution time of the workload under a Spark plan.
struct SparkRunEstimate {
  double seconds = 0.0;
  bool x_cached = false;  // X fits the aggregate RDD cache
  int stages = 0;
};

SparkRunEstimate EstimateSparkRun(const SparkConfig& spark,
                                  const ClusterConfig& cc,
                                  const SparkWorkload& workload,
                                  SparkPlan plan);

/// Maximum concurrent Spark applications of this shape on the cluster:
/// executors are standing containers, so one application typically
/// occupies the whole cluster (the over-provisioning effect of Table 6).
int MaxConcurrentSparkApps(const SparkConfig& spark,
                           const ClusterConfig& cc);

}  // namespace relm

#endif  // RELM_SPARK_SPARK_MODEL_H_

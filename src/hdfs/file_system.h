#ifndef RELM_HDFS_FILE_SYSTEM_H_
#define RELM_HDFS_FILE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "matrix/matrix_block.h"
#include "matrix/matrix_characteristics.h"

namespace relm {

/// Serialized data formats on (simulated) HDFS. The cost model charges
/// format-specific read/write bandwidths, mirroring the paper's
/// "default format-specific read/write bandwidths".
enum class DataFormat {
  kBinaryBlock,  // blocked binary matrices (the default internal format)
  kBinaryCell,   // (row, col, value) triples, used for sparse outputs
  kText,         // csv/ijv text, slowest to parse
};

const char* DataFormatName(DataFormat format);

/// Metadata (and optionally real payload) of one file in the simulated
/// distributed file system. At benchmark scale files are metadata-only;
/// tests and examples attach real MatrixBlocks.
struct HdfsFile {
  MatrixCharacteristics characteristics;
  DataFormat format = DataFormat::kBinaryBlock;
  int64_t size_bytes = 0;
  /// Real payload for small-data execution; null for metadata-only files.
  std::shared_ptr<const MatrixBlock> data;
};

/// A simulated HDFS namespace: pathnames to file metadata plus the block
/// size that drives MapReduce split computation. No actual disk IO happens;
/// the cluster simulator charges time for the bytes recorded here.
///
/// Thread-safe: concurrent Put*/Get/Delete calls from different job
/// submissions are serialized on an internal mutex (the namespace is the
/// one piece of state every concurrent session shares).
class SimulatedHdfs {
 public:
  explicit SimulatedHdfs(int64_t block_size = 128 * kMB)
      : block_size_(block_size) {}

  int64_t block_size() const { return block_size_; }

  /// Process-unique identity of this namespace instance (never reused,
  /// even after destruction). Plan-cache keys include it so a cached
  /// program can only be hit by the namespace it was compiled against —
  /// a namespace with identical metadata in a *different* session must
  /// not resolve to a master program wired to this one.
  uint64_t instance_id() const { return instance_id_; }

  /// Registers a metadata-only file (dims/sparsity known, no payload).
  /// size_bytes defaults to the serialized-size estimate for the format.
  void PutMetadata(const std::string& path,
                   const MatrixCharacteristics& mc,
                   DataFormat format = DataFormat::kBinaryBlock,
                   int64_t size_bytes = -1);

  /// Registers a file with a real in-memory payload.
  void PutMatrix(const std::string& path, MatrixBlock block,
                 DataFormat format = DataFormat::kBinaryBlock);

  bool Exists(const std::string& path) const;

  /// Looks up a file; NotFound if absent. Consults the read-fault hook
  /// (if any) first.
  Result<HdfsFile> Get(const std::string& path) const;

  /// Installs a fault hook consulted by every Get(): a non-OK return
  /// fails that read with the hook's status. Chaos/fault-injection
  /// testing only — pass nullptr to uninstall. Thread-safe, but
  /// install/uninstall must not race live readers' hook invocations
  /// (set it up before sharing the namespace).
  void SetReadFaultHook(std::function<Status(const std::string&)> hook);

  /// Removes a file if present (idempotent).
  void Delete(const std::string& path);

  /// Number of HDFS blocks (= minimum map tasks) for a file size.
  int64_t NumBlocks(int64_t size_bytes) const;

  /// All registered paths (sorted), for debugging and tests.
  std::vector<std::string> ListPaths() const;

  /// Total bytes stored across all files.
  int64_t TotalBytes() const;

  /// Order-independent fingerprint of the namespace metadata (paths,
  /// dimensions, nnz, format, size). Plan/what-if cache keys include it
  /// so entries are invalidated when any input's metadata changes;
  /// re-registering identical metadata leaves the fingerprint stable.
  uint64_t MetadataFingerprint() const;

 private:
  static uint64_t NextInstanceId();

  int64_t block_size_;
  const uint64_t instance_id_ = NextInstanceId();
  mutable std::mutex mu_;
  std::map<std::string, HdfsFile> files_;  // guarded by mu_
  /// Invoked under mu_, so it must not call back into this namespace.
  std::function<Status(const std::string&)> read_fault_hook_;  // guarded
};

}  // namespace relm

#endif  // RELM_HDFS_FILE_SYSTEM_H_

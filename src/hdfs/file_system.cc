#include "hdfs/file_system.h"

#include <algorithm>
#include <atomic>

namespace relm {

uint64_t SimulatedHdfs::NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* DataFormatName(DataFormat format) {
  switch (format) {
    case DataFormat::kBinaryBlock:
      return "binary-block";
    case DataFormat::kBinaryCell:
      return "binary-cell";
    case DataFormat::kText:
      return "text";
  }
  return "?";
}

void SimulatedHdfs::PutMetadata(const std::string& path,
                                const MatrixCharacteristics& mc,
                                DataFormat format, int64_t size_bytes) {
  HdfsFile f;
  f.characteristics = mc;
  f.format = format;
  f.size_bytes = size_bytes >= 0 ? size_bytes : EstimateSizeOnDisk(mc);
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(f);
}

void SimulatedHdfs::PutMatrix(const std::string& path, MatrixBlock block,
                              DataFormat format) {
  HdfsFile f;
  f.characteristics = block.Characteristics();
  f.format = format;
  f.size_bytes = EstimateSizeOnDisk(f.characteristics);
  f.data = std::make_shared<const MatrixBlock>(std::move(block));
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(f);
}

bool SimulatedHdfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Result<HdfsFile> SimulatedHdfs::Get(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (read_fault_hook_) {
    Status s = read_fault_hook_(path);
    if (!s.ok()) return s;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such HDFS file: " + path);
  }
  return it->second;
}

void SimulatedHdfs::SetReadFaultHook(
    std::function<Status(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  read_fault_hook_ = std::move(hook);
}

void SimulatedHdfs::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

int64_t SimulatedHdfs::NumBlocks(int64_t size_bytes) const {
  if (size_bytes <= 0) return 1;
  return (size_bytes + block_size_ - 1) / block_size_;
}

std::vector<std::string> SimulatedHdfs::ListPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

int64_t SimulatedHdfs::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [path, file] : files_) total += file.size_bytes;
  return total;
}

uint64_t SimulatedHdfs::MetadataFingerprint() const {
  // FNV-1a over the sorted (map-ordered) entries.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [path, file] : files_) {
    for (char c : path) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    mix(static_cast<uint64_t>(file.characteristics.rows()));
    mix(static_cast<uint64_t>(file.characteristics.cols()));
    mix(static_cast<uint64_t>(file.characteristics.nnz()));
    mix(static_cast<uint64_t>(file.format));
    mix(static_cast<uint64_t>(file.size_bytes));
  }
  return h;
}

}  // namespace relm

#include "hdfs/file_system.h"

#include <algorithm>

namespace relm {

const char* DataFormatName(DataFormat format) {
  switch (format) {
    case DataFormat::kBinaryBlock:
      return "binary-block";
    case DataFormat::kBinaryCell:
      return "binary-cell";
    case DataFormat::kText:
      return "text";
  }
  return "?";
}

void SimulatedHdfs::PutMetadata(const std::string& path,
                                const MatrixCharacteristics& mc,
                                DataFormat format, int64_t size_bytes) {
  HdfsFile f;
  f.characteristics = mc;
  f.format = format;
  f.size_bytes = size_bytes >= 0 ? size_bytes : EstimateSizeOnDisk(mc);
  files_[path] = std::move(f);
}

void SimulatedHdfs::PutMatrix(const std::string& path, MatrixBlock block,
                              DataFormat format) {
  HdfsFile f;
  f.characteristics = block.Characteristics();
  f.format = format;
  f.size_bytes = EstimateSizeOnDisk(f.characteristics);
  f.data = std::make_shared<const MatrixBlock>(std::move(block));
  files_[path] = std::move(f);
}

bool SimulatedHdfs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

Result<HdfsFile> SimulatedHdfs::Get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such HDFS file: " + path);
  }
  return it->second;
}

void SimulatedHdfs::Delete(const std::string& path) { files_.erase(path); }

int64_t SimulatedHdfs::NumBlocks(int64_t size_bytes) const {
  if (size_bytes <= 0) return 1;
  return (size_bytes + block_size_ - 1) / block_size_;
}

std::vector<std::string> SimulatedHdfs::ListPaths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, file] : files_) out.push_back(path);
  return out;
}

int64_t SimulatedHdfs::TotalBytes() const {
  int64_t total = 0;
  for (const auto& [path, file] : files_) total += file.size_bytes;
  return total;
}

}  // namespace relm
